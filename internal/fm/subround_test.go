package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
	"mlpart/internal/intrapar"
)

// refineWithWorkers runs Refine on a clone of p with a pool of the
// given size (0 = serial engine) and returns the refined partition
// and result. Each call uses a fresh rng from seed so runs are
// comparable.
func refineWithWorkers(t *testing.T, h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, seed int64, workers int) (*hypergraph.Partition, Result) {
	t.Helper()
	q := p.Clone()
	if workers > 0 {
		pool := intrapar.New(workers)
		defer pool.Close()
		cfg.Par = pool
	}
	res, err := Refine(h, q, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q, res
}

func samePart(a, b *hypergraph.Partition) bool {
	if len(a.Part) != len(b.Part) {
		return false
	}
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			return false
		}
	}
	return true
}

// TestSubroundBitIdenticalAcrossWorkers is the core determinism
// contract: the sub-round engine returns identical partitions and
// identical Result statistics for every pool size, across engines and
// feature combinations.
func TestSubroundBitIdenticalAcrossWorkers(t *testing.T) {
	cfgs := []Config{
		{Engine: EngineFM},
		{Engine: EngineCLIP},
		{Engine: EngineFM, Boundary: true, EarlyExit: true},
		{Engine: EngineCLIP, Backtrack: true, Lookahead: 3},
		{Engine: EngineCLIP, Boundary: true, EarlyExit: true, Backtrack: true},
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 40+rng.Intn(120), 80+rng.Intn(200), 6)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		for ci, cfg := range cfgs {
			p1, r1 := refineWithWorkers(t, h, p, cfg, seed, 1)
			for _, workers := range []int{2, 8} {
				pw, rw := refineWithWorkers(t, h, p, cfg, seed, workers)
				if !samePart(p1, pw) {
					t.Fatalf("seed %d cfg %d: partition differs between 1 and %d workers", seed, ci, workers)
				}
				if r1 != rw {
					t.Fatalf("seed %d cfg %d: result differs between 1 and %d workers: %+v vs %+v", seed, ci, workers, r1, rw)
				}
			}
		}
	}
}

// TestSubroundSoundness checks the engine's safety contract on random
// instances: never worsens the cut, reports truthful cuts, keeps the
// balance bound, and its incremental active cut matches a recount.
func TestSubroundSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 10+rng.Intn(60), 20+rng.Intn(100), 5)
		for _, eng := range []Engine{EngineFM, EngineCLIP} {
			p := hypergraph.RandomPartition(h, 2, 0.1, rng)
			before := p.Cut(h)
			q, res := refineWithWorkers(t, h, p, Config{Engine: eng}, seed, 4)
			if res.Cut > before || res.InitialCut != before {
				return false
			}
			if res.Cut != q.Cut(h) {
				return false
			}
			if !q.IsBalanced(h, hypergraph.Balance(h, 2, 0.1)) {
				return false
			}
			// Recount the active cut (all nets are active here: the
			// default MaxNetSize of 200 exceeds every net).
			if res.ActiveCut != q.WeightedCut(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSubroundFindsOptimalCut is the quality floor: on the trivial
// two-cluster instance the parallel engine still finds the cut of 1.
func TestSubroundFindsOptimalCut(t *testing.T) {
	h := twoClusters(t, 8)
	for _, eng := range []Engine{EngineFM, EngineCLIP} {
		found := false
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p := hypergraph.RandomPartition(h, 2, 0.1, rng)
			q, res := refineWithWorkers(t, h, p, Config{Engine: eng}, seed, 2)
			if res.Cut != q.Cut(h) {
				t.Fatalf("%v: result cut %d != measured %d", eng, res.Cut, q.Cut(h))
			}
			if res.Cut == 1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v sub-round engine never found the optimal cut of 1 in 10 runs", eng)
		}
	}
}

// TestSubroundPROPIgnoresPar pins the documented fallback: the PROP
// engines run serially whether or not a pool is supplied, with
// bit-identical results.
func TestSubroundPROPIgnoresPar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomH(rng, 60, 120, 5)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	for _, eng := range []Engine{EnginePROP, EngineCLIPPROP} {
		p0, r0 := refineWithWorkers(t, h, p, Config{Engine: eng}, 9, 0)
		p4, r4 := refineWithWorkers(t, h, p, Config{Engine: eng}, 9, 4)
		if !samePart(p0, p4) || r0 != r4 {
			t.Fatalf("%v: results differ with and without a pool", eng)
		}
	}
}

// TestSubroundWorkspaceReuseBitIdentical mirrors the serial engines'
// workspace contract: reusing one Workspace across runs of the
// parallel engine changes nothing.
func TestSubroundWorkspaceReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h1 := randomH(rng, 90, 160, 6)
	h2 := randomH(rng, 30, 60, 4)
	p1 := hypergraph.RandomPartition(h1, 2, 0.1, rng)
	p2 := hypergraph.RandomPartition(h2, 2, 0.1, rng)

	pool := intrapar.New(3)
	defer pool.Close()
	ws := &Workspace{}
	var fresh, reused [2]Result
	var freshP, reusedP [2]*hypergraph.Partition
	for i, pair := range []struct {
		h *hypergraph.Hypergraph
		p *hypergraph.Partition
	}{{h1, p1}, {h2, p2}} {
		q := pair.p.Clone()
		res, err := Refine(pair.h, q, Config{Engine: EngineCLIP, Par: pool}, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		fresh[i], freshP[i] = res, q
	}
	for i, pair := range []struct {
		h *hypergraph.Hypergraph
		p *hypergraph.Partition
	}{{h1, p1}, {h2, p2}} {
		q := pair.p.Clone()
		res, err := Refine(pair.h, q, Config{Engine: EngineCLIP, Par: pool, WS: ws}, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		reused[i], reusedP[i] = res, q
	}
	for i := range fresh {
		if fresh[i] != reused[i] || !samePart(freshP[i], reusedP[i]) {
			t.Fatalf("run %d: workspace reuse changed the result", i)
		}
	}
}
