package fm

// PROP: the probability-based gain computation of Dutt & Deng ("A
// Probability-Based Approach to VLSI Circuit Partitioning", DAC 1996,
// the paper's [13]), surveyed in §II.A. Instead of the immediate cut
// change, each cell is scored by an expected benefit that accounts
// for the probability that its neighbors will also move:
//
// Every free cell carries a move probability p₀ (0.95 in [13]);
// locked cells stay put. For net e and a free cell v on side F, the
// probability that the remaining F pins all leave is
//
//	A(e,v) = 0                     if e has a locked pin on F,
//	         p₀^(freeF(e) − 1)     otherwise,
//
// and the PROP gain is
//
//	gain(v) = Σ_{e cut}     A(e,v)          (e will likely be freed)
//	        − Σ_{e uncut}  (1 − A(e,v))     (e will likely stay cut)
//
// which reduces exactly to the FM gain as p₀ → 0. Since these gains
// are non-discrete, PROP cannot exploit the bucket structure (§II.A);
// a lazy max-heap replaces it, which is why PROP costs a factor of
// four to eight in runtime — matching the paper's observation. The
// CLIP idea composes with PROP (the CL-PR variant of Table VII) by
// keying the heap on the gain *delta* since the start of the pass.

import (
	"container/heap"
	"math"
	"math/rand"

	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
)

// DefaultInitialProb is p₀ of [13].
const DefaultInitialProb = 0.95

// propRefiner is the heap-based PROP engine.
type propRefiner struct {
	h   *hypergraph.Hypergraph
	p   *hypergraph.Partition
	cfg Config
	rng *rand.Rand
	ws  *Workspace

	bound hypergraph.BalanceBound
	areas [2]int64

	active []bool
	pc     [2][]int32 // total pin counts per side
	lc     [2][]int32 // locked pin counts per side
	locked []bool

	p0   float64
	pows []float64 // p0^k lookup, k ≤ max net size

	gain    []float64 // current PROP gain
	initKey []float64 // CLIP-PROP: gain at pass start
	version []int32   // entry staleness counter
	heaps   [2]propHeap

	moveCells []int32
}

type propEntry struct {
	key     float64
	cell    int32
	version int32
}

type propHeap []propEntry

func (h propHeap) Len() int            { return len(h) }
func (h propHeap) Less(i, j int) bool  { return h[i].key > h[j].key } // max-heap
func (h propHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *propHeap) Push(x interface{}) { *h = append(*h, x.(propEntry)) }
func (h *propHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newPropRefiner(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand) *propRefiner {
	n := h.NumCells()
	ws := cfg.grab()
	// As in newRefiner: buffers are grown on the workspace and
	// aliased, and every one is rewritten in full before any read
	// (computeCounts/initPass), so no clearing is needed on reuse.
	ws.active = growBool(ws.active, h.NumNets())
	ws.locked = growBool(ws.locked, n)
	ws.gainF = growFloat64(ws.gainF, n)
	ws.version = growInt32(ws.version, n)
	ws.pc[0] = growInt32(ws.pc[0], h.NumNets())
	ws.pc[1] = growInt32(ws.pc[1], h.NumNets())
	ws.lc[0] = growInt32(ws.lc[0], h.NumNets())
	ws.lc[1] = growInt32(ws.lc[1], h.NumNets())
	ws.moveCells = growInt32(ws.moveCells, n)
	r := &propRefiner{
		h: h, p: p, cfg: cfg, rng: rng, ws: ws,
		bound:   hypergraph.Balance(h, 2, cfg.Tolerance),
		active:  ws.active,
		locked:  ws.locked,
		p0:      cfg.InitialProb,
		gain:    ws.gainF,
		version: ws.version,
	}
	if r.p0 == 0 {
		r.p0 = DefaultInitialProb
	}
	r.pc[0] = ws.pc[0]
	r.pc[1] = ws.pc[1]
	r.lc[0] = ws.lc[0]
	r.lc[1] = ws.lc[1]
	r.moveCells = ws.moveCells[:0]
	r.heaps[0] = ws.heaps[0][:0]
	r.heaps[1] = ws.heaps[1][:0]
	maxNet := 2
	for e := 0; e < h.NumNets(); e++ {
		r.active[e] = cfg.MaxNetSize < 0 || h.NetSize(e) <= cfg.MaxNetSize
		if r.active[e] && h.NetSize(e) > maxNet {
			maxNet = h.NetSize(e)
		}
	}
	ws.pows = growFloat64(ws.pows, maxNet+1)
	r.pows = ws.pows
	r.pows[0] = 1
	for k := 1; k <= maxNet; k++ {
		r.pows[k] = r.pows[k-1] * r.p0
	}
	if cfg.Engine == EngineCLIPPROP {
		ws.initKeyF = growFloat64(ws.initKeyF, n)
		r.initKey = ws.initKeyF
	}
	return r
}

func (r *propRefiner) run() Result {
	res := Result{InitialCut: r.p.WeightedCut(r.h)}
	maxPasses := r.cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = 1 << 30
	}
	for pass := 0; pass < maxPasses; pass++ {
		if r.cfg.Stop != nil && r.cfg.Stop() {
			res.Interrupted = true
			break
		}
		if r.cfg.Inject != nil && r.fireFault(&res) {
			break
		}
		improved, applied, tried := r.runPass()
		// PROP keeps no incremental cut counter; -1 marks the cut
		// fields unavailable rather than paying a recount per pass.
		r.cfg.Telemetry.RecordPass(r.cfg.Engine.String(), res.Passes, -1, -1, tried, applied)
		res.Passes++
		res.Moves += applied
		res.MovesTried += tried
		if improved <= 0 {
			break
		}
	}
	res.Cut = r.p.WeightedCut(r.h)
	res.ActiveCut = -1 // PROP keeps no incremental cut counter
	// Heap entries grow past n via lazy deletion; keep the growth.
	r.ws.heaps[0] = r.heaps[0]
	r.ws.heaps[1] = r.heaps[1]
	r.ws.moveCells = r.moveCells
	return res
}

// fireFault hits the fm.pass fault site for the PROP engine, with the
// same semantics as (*refiner).fireFault. PROP keeps no incremental
// cut counter, so a corrupt flip here degrades quality (or balance,
// which the audit balance check catches) without an ActiveCut
// mismatch.
func (r *propRefiner) fireFault(res *Result) bool {
	switch r.cfg.Inject.Fire(faultinject.SiteFMPass) {
	case faultinject.ActCancel:
		res.Interrupted = true
		return true
	case faultinject.ActCorrupt:
		if n := r.h.NumCells(); n > 0 {
			v := r.rng.Intn(n)
			r.p.Part[v] = 1 - r.p.Part[v]
		}
	}
	return false
}

// computeCounts fills pin counts and areas from the partition.
func (r *propRefiner) computeCounts() {
	for e := 0; e < r.h.NumNets(); e++ {
		r.pc[0][e], r.pc[1][e] = 0, 0
		r.lc[0][e], r.lc[1][e] = 0, 0
	}
	for v := 0; v < r.h.NumCells(); v++ {
		s := r.p.Part[v]
		for _, e := range r.h.Nets(v) {
			r.pc[s][e]++
		}
	}
	r.areas[0], r.areas[1] = 0, 0
	for v := 0; v < r.h.NumCells(); v++ {
		r.areas[r.p.Part[v]] += r.h.Area(v)
	}
}

// netA returns A(e, v) for free cell v on side s of net e.
func (r *propRefiner) netA(e int32, s int32) float64 {
	if r.lc[s][e] > 0 {
		return 0
	}
	free := r.pc[s][e] - r.lc[s][e]
	return r.pows[free-1] // free ≥ 1 because v itself is free on s
}

// computeGain evaluates the PROP gain of free cell v from scratch.
func (r *propRefiner) computeGain(v int32) float64 {
	s := r.p.Part[v]
	var g float64
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := float64(r.h.NetWeight(int(e)))
		cut := r.pc[0][e] > 0 && r.pc[1][e] > 0
		a := r.netA(e, s)
		if cut {
			g += w * a
		} else {
			g -= w * (1 - a)
		}
	}
	return g
}

// realGain is the immediate integer cut change of moving v — used
// for pass accounting, exactly as in classic FM.
func (r *propRefiner) realGain(v int32) int {
	s := r.p.Part[v]
	g := 0
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := int(r.h.NetWeight(int(e)))
		if r.pc[s][e] == 1 {
			g += w
		}
		if r.pc[1-s][e] == 0 {
			g -= w
		}
	}
	return g
}

// key maps a gain to the heap key under the engine.
func (r *propRefiner) key(v int32) float64 {
	if r.cfg.Engine == EngineCLIPPROP {
		return r.gain[v] - r.initKey[v]
	}
	return r.gain[v]
}

// push refreshes v's heap entry.
func (r *propRefiner) push(v int32) {
	r.version[v]++
	heap.Push(&r.heaps[r.p.Part[v]], propEntry{key: r.key(v), cell: v, version: r.version[v]})
}

func (r *propRefiner) initPass() {
	n := r.h.NumCells()
	r.computeCounts()
	r.heaps[0] = r.heaps[0][:0]
	r.heaps[1] = r.heaps[1][:0]
	for v := 0; v < n; v++ {
		r.locked[v] = false
		r.version[v] = 0
	}
	for v := int32(0); int(v) < n; v++ {
		r.gain[v] = r.computeGain(v)
	}
	if r.cfg.Engine == EngineCLIPPROP {
		copy(r.initKey, r.gain)
	}
	for v := int32(0); int(v) < n; v++ {
		r.push(v)
	}
	r.moveCells = r.moveCells[:0]
}

func (r *propRefiner) feasible(v int32) bool {
	s := r.p.Part[v]
	a := r.h.Area(int(v))
	return r.areas[1-s]+a <= r.bound.Hi && r.areas[s]-a >= r.bound.Lo
}

// selectScanLimit bounds how many valid-but-infeasible entries a
// side's heap is probed past per selection. When a side is blocked by
// the balance bound (the common case once one block reaches its Lo
// bound), every cell on it is infeasible with unit areas; without the
// bound each selection would pop and re-push the whole side — an
// O(n² log n) pass.
const selectScanLimit = 32

// selectMove pops the best valid feasible cell across both heaps.
// Stale entries are discarded; up to selectScanLimit feasible-check
// failures per side are tolerated (popped and re-pushed) before the
// side is treated as blocked for this selection.
func (r *propRefiner) selectMove() int32 {
	var stash [2][]propEntry
	best := int32(-1)
	bestKey := math.Inf(-1)
	for s := 0; s < 2; s++ {
		probes := 0
		for len(r.heaps[s]) > 0 {
			e := r.heaps[s][0]
			v := e.cell
			if r.locked[v] || e.version != r.version[v] || r.p.Part[v] != int32(s) {
				heap.Pop(&r.heaps[s]) // stale
				continue
			}
			if !r.feasible(v) {
				probes++
				if probes > selectScanLimit {
					break // side blocked this round
				}
				heap.Pop(&r.heaps[s])
				stash[s] = append(stash[s], e)
				continue
			}
			if e.key > bestKey {
				bestKey = e.key
				best = v
			}
			break
		}
	}
	for s := 0; s < 2; s++ {
		for _, e := range stash[s] {
			heap.Push(&r.heaps[s], e)
		}
	}
	return best
}

// contribSide returns net e's contribution to the PROP gain of any
// free pin on side s, given the net's cut state: w·A if cut,
// −w·(1−A) if uncut, where A = p₀^(free_s − 1) unless a locked pin
// sits on s. Returns 0 when side s has no free pins (no pin uses the
// value then).
func (r *propRefiner) contribSide(e int32, s int32, cut bool) float64 {
	free := r.pc[s][e] - r.lc[s][e]
	if free < 1 {
		return 0
	}
	var a float64
	if r.lc[s][e] == 0 {
		a = r.pows[free-1]
	}
	w := float64(r.h.NetWeight(int(e)))
	if cut {
		return w * a
	}
	return -w * (1 - a)
}

// applyMove moves v, locks it, and shifts the gains of its nets' free
// pins by the per-side contribution delta — O(|e|) per net, like
// classic FM, instead of recomputing each neighbor's whole gain.
func (r *propRefiner) applyMove(v int32) {
	from := r.p.Part[v]
	to := 1 - from
	r.locked[v] = true
	r.version[v]++ // invalidate heap entries
	r.areas[from] -= r.h.Area(int(v))
	r.areas[to] += r.h.Area(int(v))
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			r.pc[from][e]--
			r.pc[to][e]++
			continue
		}
		oldCut := r.pc[0][e] > 0 && r.pc[1][e] > 0
		var old [2]float64
		old[0] = r.contribSide(e, 0, oldCut)
		old[1] = r.contribSide(e, 1, oldCut)
		r.pc[from][e]--
		r.pc[to][e]++
		r.lc[to][e]++ // v is now locked on the to side
		newCut := r.pc[0][e] > 0 && r.pc[1][e] > 0
		var del [2]float64
		del[0] = r.contribSide(e, 0, newCut) - old[0]
		del[1] = r.contribSide(e, 1, newCut) - old[1]
		if del[0] == 0 && del[1] == 0 {
			continue
		}
		for _, u := range r.h.Pins(int(e)) {
			if r.locked[u] {
				continue
			}
			if d := del[r.p.Part[u]]; d != 0 {
				r.gain[u] += d
				r.push(u)
			}
		}
	}
	r.p.Part[v] = int32(to)
	r.moveCells = append(r.moveCells, v)
}

// undoMove rolls back a logged move (gains left stale).
func (r *propRefiner) undoMove(v int32) {
	cur := r.p.Part[v]
	orig := 1 - cur
	for _, e := range r.h.Nets(int(v)) {
		r.pc[cur][e]--
		r.pc[orig][e]++
		if r.active[e] {
			r.lc[cur][e]--
		}
	}
	r.areas[cur] -= r.h.Area(int(v))
	r.areas[orig] += r.h.Area(int(v))
	r.p.Part[v] = int32(orig)
}

func (r *propRefiner) runPass() (improved, applied, tried int) {
	r.initPass()
	bestGain, cumGain := 0, 0
	bestLen := 0
	for {
		v := r.selectMove()
		if v < 0 {
			break
		}
		cumGain += r.realGain(v)
		r.applyMove(v)
		if cumGain > bestGain {
			bestGain = cumGain
			bestLen = len(r.moveCells)
		}
	}
	tried = len(r.moveCells)
	for i := len(r.moveCells) - 1; i >= bestLen; i-- {
		r.undoMove(r.moveCells[i])
	}
	r.moveCells = r.moveCells[:bestLen]
	return bestGain, bestLen, tried
}
