package fm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
)

func TestPROPFindsOptimumOnTwoClusters(t *testing.T) {
	h := twoClusters(t, 8)
	for _, eng := range []Engine{EnginePROP, EngineCLIPPROP} {
		found := false
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			_, res, err := Partition(h, nil, Config{Engine: eng}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cut == 1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v never found the optimal cut of 1", eng)
		}
	}
}

func TestPROPNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 10+rng.Intn(50), 20+rng.Intn(80), 5)
		for _, eng := range []Engine{EnginePROP, EngineCLIPPROP} {
			p := hypergraph.RandomPartition(h, 2, 0.1, rng)
			before := p.Cut(h)
			res, err := Refine(h, p, Config{Engine: eng}, rng)
			if err != nil {
				return false
			}
			if res.Cut > before || res.Cut != p.Cut(h) {
				return false
			}
			if !p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPROPGainReducesToFMAtZeroProb(t *testing.T) {
	// With p₀ → 0 the PROP gain must equal the FM gain for every
	// cell at pass start. Use a tiny but nonzero p₀ so Normalize
	// accepts it, and compare after rounding.
	rng := rand.New(rand.NewSource(3))
	h := randomH(rng, 30, 60, 5)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	cfgP, _ := Config{Engine: EnginePROP, InitialProb: 1e-12}.Normalize()
	pr := newPropRefiner(h, p.Clone(), cfgP, rng)
	pr.computeCounts()
	cfgF, _ := Config{}.Normalize()
	fr := newRefiner(h, p.Clone(), cfgF, rng)
	fr.computePinCounts()
	for v := int32(0); int(v) < h.NumCells(); v++ {
		want := float64(fr.computeGain(v))
		got := pr.computeGain(v)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("cell %d: PROP gain %v != FM gain %v at p₀≈0", v, got, want)
		}
	}
}

func TestPROPGainDefinition(t *testing.T) {
	// 4 cells, side 0 = {0,1}, side 1 = {2,3}.
	// net A = {0,1} uncut; net B = {0,2} cut.
	h := hypergraph.NewBuilder(4).
		AddNet(0, 1).
		AddNet(0, 2).
		MustBuild()
	p := &hypergraph.Partition{Part: []int32{0, 0, 1, 1}, K: 2}
	cfg, _ := Config{Engine: EnginePROP, InitialProb: 0.5}.Normalize()
	r := newPropRefiner(h, p, cfg, rand.New(rand.NewSource(0)))
	r.computeCounts()
	// gain(0): net A uncut, A(e,0) = p₀^(freeF−1) = 0.5^1 = 0.5 →
	// −(1−0.5) = −0.5; net B cut, A = 0.5^0 = 1 → +1. Total 0.5.
	if g := r.computeGain(0); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("gain(0) = %v, want 0.5", g)
	}
	// gain(1): only net A, uncut → −(1 − 0.5) = −0.5.
	if g := r.computeGain(1); math.Abs(g+0.5) > 1e-12 {
		t.Errorf("gain(1) = %v, want −0.5", g)
	}
	// gain(2): only net B, cut, A = 1 → +1.
	if g := r.computeGain(2); math.Abs(g-1) > 1e-12 {
		t.Errorf("gain(2) = %v, want 1", g)
	}
}

func TestPROPLockedPinsZeroA(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddNet(0, 1, 2).MustBuild()
	p := &hypergraph.Partition{Part: []int32{0, 0, 1}, K: 2}
	cfg, _ := Config{Engine: EnginePROP}.Normalize()
	r := newPropRefiner(h, p, cfg, rand.New(rand.NewSource(0)))
	r.computeCounts()
	r.initPass()
	// Lock cell 1 by moving it.
	r.applyMove(1)
	// Now cell 0's net has a locked pin on side 1 (where 1 landed);
	// for cell 2 on side 1, A must be 0 (locked companion).
	if a := r.netA(0, 1); a != 0 {
		t.Errorf("A with locked companion = %v, want 0", a)
	}
}

func TestPROPIncrementalMatchesRecompute(t *testing.T) {
	// The heap entries are rebuilt from computeGain on every move, so
	// the invariant is that gain[u] always equals computeGain(u) for
	// free cells.
	rng := rand.New(rand.NewSource(5))
	h := randomH(rng, 30, 60, 5)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	cfg, _ := Config{Engine: EnginePROP}.Normalize()
	r := newPropRefiner(h, p, cfg, rng)
	r.initPass()
	for step := 0; step < 15; step++ {
		v := r.selectMove()
		if v < 0 {
			break
		}
		r.applyMove(v)
		for u := int32(0); int(u) < h.NumCells(); u++ {
			if r.locked[u] {
				continue
			}
			if math.Abs(r.gain[u]-r.computeGain(u)) > 1e-9 {
				t.Fatalf("step %d: cell %d stale gain", step, u)
			}
		}
	}
}

func TestPROPPassGainMatchesCutDelta(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 40, 80, 5)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		cfg, _ := Config{Engine: EnginePROP}.Normalize()
		r := newPropRefiner(h, p, cfg, rng)
		before := p.Cut(h)
		improved, _, _ := r.runPass()
		after := p.Cut(h)
		// improved counts only active nets; with default MaxNetSize
		// all nets here are active.
		if before-after != improved {
			t.Fatalf("seed %d: pass gain %d but cut fell by %d", seed, improved, before-after)
		}
	}
}

func TestPROPConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Engine: EnginePROP, InitialProb: 1.5},
		{Engine: EnginePROP, InitialProb: -0.1},
		{Engine: EnginePROP, Boundary: true},
		{Engine: EngineCLIPPROP, Lookahead: 3},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
	c, err := Config{Engine: EnginePROP}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.InitialProb != DefaultInitialProb {
		t.Errorf("default p₀ = %v", c.InitialProb)
	}
}

func TestPROPEngineStrings(t *testing.T) {
	if EnginePROP.String() != "PROP" || EngineCLIPPROP.String() != "CL-PR" {
		t.Error("engine labels wrong")
	}
}

func TestPROPOnAverageAtLeastAsGoodAsFM(t *testing.T) {
	// [13] reports PROP significantly outperforms FM; on a clustered
	// instance the average over a handful of runs should not be
	// dramatically worse.
	rng := rand.New(rand.NewSource(8))
	b := hypergraph.NewBuilder(120)
	for g := 0; g < 4; g++ {
		base := g * 30
		for i := 0; i < 90; i++ {
			b.AddNet(base+rng.Intn(30), base+rng.Intn(30))
		}
	}
	for i := 0; i < 6; i++ {
		b.AddNet(rng.Intn(120), rng.Intn(120))
	}
	h := b.MustBuild()
	sum := func(eng Engine) int {
		total := 0
		for seed := int64(0); seed < 6; seed++ {
			_, res, err := Partition(h, nil, Config{Engine: eng}, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			total += res.Cut
		}
		return total
	}
	fmSum, propSum := sum(EngineFM), sum(EnginePROP)
	if propSum > fmSum*3/2 {
		t.Errorf("PROP total %d much worse than FM total %d", propSum, fmSum)
	}
}
