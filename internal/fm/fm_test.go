package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
)

// twoClusters builds a hypergraph with two densely connected groups
// of k cells joined by a single bridging net; min cut = 1.
func twoClusters(t *testing.T, k int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddNet(i, j)
			b.AddNet(k+i, k+j)
		}
	}
	b.AddNet(0, k) // bridge
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

func TestFMFindsOptimalCutOnTwoClusters(t *testing.T) {
	h := twoClusters(t, 8)
	found := false
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, res, err := Partition(h, nil, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut != p.Cut(h) {
			t.Fatalf("result cut %d != measured %d", res.Cut, p.Cut(h))
		}
		if res.Cut == 1 {
			found = true
			break
		}
	}
	if !found {
		t.Error("FM never found the optimal cut of 1 in 10 runs on a trivial instance")
	}
}

func TestCLIPFindsOptimalCutOnTwoClusters(t *testing.T) {
	h := twoClusters(t, 8)
	found := false
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, res, err := Partition(h, nil, Config{Engine: EngineCLIP}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut == 1 {
			found = true
			break
		}
	}
	if !found {
		t.Error("CLIP never found the optimal cut of 1 in 10 runs")
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 10+rng.Intn(60), 20+rng.Intn(100), 5)
		for _, eng := range []Engine{EngineFM, EngineCLIP} {
			p := hypergraph.RandomPartition(h, 2, 0.1, rng)
			before := p.Cut(h)
			res, err := Refine(h, p, Config{Engine: eng}, rng)
			if err != nil {
				return false
			}
			if res.Cut > before || res.InitialCut != before {
				return false
			}
			if res.Cut != p.Cut(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRefineKeepsBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 20+rng.Intn(80), 30+rng.Intn(100), 6)
		bound := hypergraph.Balance(h, 2, 0.1)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		if _, err := Refine(h, p, Config{}, rng); err != nil {
			return false
		}
		return p.IsBalanced(h, bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRebalancesUnbalancedInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomH(rng, 80, 100, 4)
	initial := hypergraph.NewPartition(80, 2) // all on side 0
	p, _, err := Partition(h, initial, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bound := hypergraph.Balance(h, 2, 0.1)
	if !p.IsBalanced(h, bound) {
		t.Errorf("result unbalanced: %v vs %+v", p.BlockAreas(h), bound)
	}
	// The original must be untouched.
	for _, k := range initial.Part {
		if k != 0 {
			t.Fatal("Partition modified the initial solution")
		}
	}
}

func TestAllBucketOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomH(rng, 60, 120, 4)
	for _, ord := range []gainbucket.Order{gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random} {
		p, res, err := Partition(h, nil, Config{Order: ord}, rng)
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if res.Cut != p.Cut(h) {
			t.Errorf("%v: cut mismatch", ord)
		}
		if res.Passes < 1 {
			t.Errorf("%v: no passes run", ord)
		}
	}
}

func TestLargeNetsIgnoredButCounted(t *testing.T) {
	// One giant net over all cells plus small nets. With MaxNetSize
	// below the giant net's size, refinement ignores it, but the
	// reported cut still counts it.
	rng := rand.New(rand.NewSource(2))
	b := hypergraph.NewBuilder(20)
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	b.AddNet(all...)
	for i := 0; i < 19; i++ {
		b.AddNet(i, i+1)
	}
	h := b.MustBuild()
	p, res, err := Partition(h, nil, Config{MaxNetSize: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Fatalf("cut %d != measured %d", res.Cut, p.Cut(h))
	}
	if res.Cut < 1 {
		t.Error("giant net spans both sides; cut must count it")
	}
}

func TestNoNetsIsAFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := hypergraph.NewBuilder(10).MustBuild()
	p, res, err := Partition(h, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 0 || p.Cut(h) != 0 {
		t.Error("cut must be 0 with no nets")
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Tolerance != 0.1 || c.MaxNetSize != 200 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	bad := []Config{
		{Tolerance: -0.5},
		{Tolerance: 1.5},
		{MaxPasses: -1},
		{Lookahead: 7},
		{Engine: Engine(9)},
		{Order: gainbucket.Order(9)},
	}
	for i, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("config %d should fail: %+v", i, c)
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineFM.String() != "FM" || EngineCLIP.String() != "CLIP" {
		t.Error("engine labels wrong")
	}
	if Engine(5).String() == "" {
		t.Error("unknown engine should stringify")
	}
}

func TestRefineRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomH(rng, 10, 10, 3)
	if _, err := Refine(h, &hypergraph.Partition{Part: make([]int32, 10), K: 4}, Config{}, rng); err == nil {
		t.Error("expected error for K=4")
	}
	if _, err := Refine(h, &hypergraph.Partition{Part: make([]int32, 3), K: 2}, Config{}, rng); err == nil {
		t.Error("expected error for wrong length")
	}
	if _, _, err := Partition(h, &hypergraph.Partition{Part: make([]int32, 10), K: 3}, Config{}, rng); err == nil {
		t.Error("expected error for K=3 initial")
	}
}

// TestIncrementalGainsMatchRecompute is the white-box invariant test:
// after every applied move, the incrementally maintained gain of each
// free cell must equal a from-scratch recomputation.
func TestIncrementalGainsMatchRecompute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 30, 60, 5)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		cfg, _ := Config{}.Normalize()
		r := newRefiner(h, p, cfg, rng)
		r.computePinCounts()
		r.initPass()
		for step := 0; step < 20; step++ {
			v := r.selectMove()
			if v < 0 {
				break
			}
			r.applyMove(v)
			for u := int32(0); int(u) < h.NumCells(); u++ {
				if r.locked[u] {
					continue
				}
				if got, want := r.gain[u], r.computeGain(u); got != want {
					t.Fatalf("seed %d step %d: cell %d incremental gain %d != recomputed %d",
						seed, step, u, got, want)
				}
			}
		}
	}
}

// TestActiveCutTracking verifies the incrementally maintained cut
// matches a recount after moves and after rollback.
func TestActiveCutTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := randomH(rng, 40, 80, 5)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	cfg, _ := Config{}.Normalize()
	r := newRefiner(h, p, cfg, rng)
	r.computePinCounts()
	recount := func() int {
		n := 0
		for e := 0; e < h.NumNets(); e++ {
			if r.active[e] && r.pc[0][e] > 0 && r.pc[1][e] > 0 {
				n++
			}
		}
		return n
	}
	r.initPass()
	for step := 0; step < 25; step++ {
		v := r.selectMove()
		if v < 0 {
			break
		}
		r.applyMove(v)
		if r.activeCut != recount() {
			t.Fatalf("step %d: activeCut %d != recount %d", step, r.activeCut, recount())
		}
	}
	for i := len(r.moveCells) - 1; i >= 0; i-- {
		r.undoMove(r.moveCells[i])
		if r.activeCut != recount() {
			t.Fatalf("undo %d: activeCut %d != recount %d", i, r.activeCut, recount())
		}
	}
}

// TestPassGainMatchesCutDelta: the gain realized by a pass equals the
// decrease in the active-net cut.
func TestPassGainMatchesCutDelta(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 50, 90, 5)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		cfg, _ := Config{}.Normalize()
		r := newRefiner(h, p, cfg, rng)
		r.computePinCounts()
		before := r.activeCut
		improved, _, _ := r.runPass()
		if got := before - r.activeCut; got != improved {
			t.Fatalf("seed %d: pass reported gain %d but cut fell by %d", seed, improved, got)
		}
	}
}

func TestCLIPKeysStayInRange(t *testing.T) {
	// CLIP bucket keys are deltas; |delta| ≤ 2·maxDeg must hold
	// throughout a pass (the doubled index range of §II.B). The
	// gainbucket panics if violated, so simply run to completion.
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 60, 150, 6)
		if _, _, err := Partition(h, nil, Config{Engine: EngineCLIP}, rng); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxPassesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomH(rng, 80, 160, 5)
	_, res, err := Partition(h, nil, Config{MaxPasses: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Errorf("Passes = %d, want 1", res.Passes)
	}
}

func TestWeightedCellsRespectBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := hypergraph.NewBuilder(30)
	for v := 0; v < 30; v++ {
		b.SetArea(v, int64(1+rng.Intn(10)))
	}
	for e := 0; e < 60; e++ {
		b.AddNet(rng.Intn(30), rng.Intn(30), rng.Intn(30))
	}
	h := b.MustBuild()
	bound := hypergraph.Balance(h, 2, 0.1)
	for seed := int64(0); seed < 5; seed++ {
		p, _, err := Partition(h, nil, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !p.IsBalanced(h, bound) {
			t.Errorf("seed %d: unbalanced %v vs %+v", seed, p.BlockAreas(h), bound)
		}
	}
}

func TestNoNetSizeLimit(t *testing.T) {
	// MaxNetSize < 0 disables the filter: the giant net is refined
	// directly.
	rng := rand.New(rand.NewSource(41))
	b := hypergraph.NewBuilder(30)
	all := make([]int, 30)
	for i := range all {
		all[i] = i
	}
	b.AddNet(all...)
	for i := 0; i < 29; i++ {
		b.AddNet(i, i+1)
	}
	h := b.MustBuild()
	p, res, err := Partition(h, nil, Config{MaxNetSize: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch with unlimited net size")
	}
}

func TestWideToleranceAllowsLopsided(t *testing.T) {
	// A dense 38-cell blob plus an isolated pair. With r = 0.9 the
	// bound is [2, 38], so {pair | blob} is feasible and FM should
	// find the cut-0 solution.
	rng := rand.New(rand.NewSource(42))
	b := hypergraph.NewBuilder(40)
	for e := 0; e < 120; e++ {
		b.AddNet(rng.Intn(38), rng.Intn(38))
	}
	b.AddNet(38, 39)
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 8; seed++ {
		_, res, err := Partition(h, nil, Config{Tolerance: 0.9}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut < best {
			best = res.Cut
		}
	}
	if best != 0 {
		t.Errorf("best cut %d with r=0.9, want 0 (lopsided solution feasible)", best)
	}
}

func TestTwoCellInstance(t *testing.T) {
	h := hypergraph.NewBuilder(2).AddNet(0, 1).MustBuild()
	rng := rand.New(rand.NewSource(43))
	p, res, err := Partition(h, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With two unit cells the §III.B max-cell slack makes even the
	// one-sided solution legal, so FM may (and should) reach cut 0.
	if res.Cut != p.Cut(h) {
		t.Errorf("cut mismatch: %d vs %d", res.Cut, p.Cut(h))
	}
	if res.Cut != 0 {
		t.Errorf("cut = %d, want 0 (one-sided is within the bound)", res.Cut)
	}
	if !p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1)) {
		t.Error("outside the balance bound")
	}
}

func TestDeterministicPerSeedAllEngines(t *testing.T) {
	h := randomH(rand.New(rand.NewSource(60)), 80, 160, 5)
	for _, eng := range []Engine{EngineFM, EngineCLIP, EnginePROP, EngineCLIPPROP} {
		a, ra, err := Partition(h, nil, Config{Engine: eng}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		b, rb, err := Partition(h, nil, Config{Engine: eng}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if ra.Cut != rb.Cut {
			t.Errorf("%v: cuts differ %d vs %d", eng, ra.Cut, rb.Cut)
		}
		for v := range a.Part {
			if a.Part[v] != b.Part[v] {
				t.Fatalf("%v: partitions differ", eng)
			}
		}
	}
}

func TestPassCountMonotonicity(t *testing.T) {
	// Per the paper, FM terminates when a pass yields no improvement:
	// the reported Passes must therefore be ≥ 1 and the final pass
	// non-improving (so quality equals what Passes−1 passes achieved).
	rng := rand.New(rand.NewSource(61))
	h := randomH(rng, 120, 240, 4)
	_, res, err := Partition(h, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 1 {
		t.Errorf("Passes = %d", res.Passes)
	}
	if res.MovesTried < res.Moves {
		t.Errorf("MovesTried %d < Moves %d", res.MovesTried, res.Moves)
	}
}

func TestWeightedNetsDriveRefinement(t *testing.T) {
	// Two candidate cuts: a weight-10 net and ten weight-1 nets. The
	// engine must prefer cutting the cheap nets. Construct: cells
	// 0..3; heavy net {0,1}; light nets {1,2}... simpler: chain with
	// a heavy middle link vs light outer links and wide tolerance.
	b := hypergraph.NewBuilder(4)
	b.AddWeightedNet(10, 1, 2) // heavy middle
	b.AddNet(0, 1)
	b.AddNet(2, 3)
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 6; seed++ {
		_, res, err := Partition(h, nil, Config{Tolerance: 0.5}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut < best {
			best = res.Cut
		}
	}
	// Optimal split {0,1}|{2,3}: cuts only the heavy net? No — that
	// cuts the weight-10 net (cost 10). Split {0}|{1,2,3} cuts one
	// light net (cost 1) and is within tolerance 0.5 (areas 1|3,
	// bound [1,3]). The engine must find cost 1.
	if best != 1 {
		t.Errorf("best weighted cut = %d, want 1", best)
	}
}

func TestWeightedRefineNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		b := hypergraph.NewBuilder(n)
		for e := 0; e < n*2; e++ {
			b.AddWeightedNet(int32(1+rng.Intn(5)), rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		for _, eng := range []Engine{EngineFM, EngineCLIP, EnginePROP} {
			p := hypergraph.RandomPartition(h, 2, 0.1, rng)
			before := p.WeightedCut(h)
			res, err := Refine(h, p, Config{Engine: eng}, rng)
			if err != nil {
				return false
			}
			if res.Cut > before || res.Cut != p.WeightedCut(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWeightedIncrementalGainsMatchRecompute(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		b := hypergraph.NewBuilder(n)
		for e := 0; e < 60; e++ {
			b.AddWeightedNet(int32(1+rng.Intn(4)), rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
		h := b.MustBuild()
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		cfg, _ := Config{}.Normalize()
		r := newRefiner(h, p, cfg, rng)
		r.computePinCounts()
		r.initPass()
		for step := 0; step < 15; step++ {
			v := r.selectMove()
			if v < 0 {
				break
			}
			r.applyMove(v)
			for u := int32(0); int(u) < h.NumCells(); u++ {
				if r.locked[u] {
					continue
				}
				if r.gain[u] != r.computeGain(u) {
					t.Fatalf("seed %d step %d: weighted gain stale for cell %d", seed, step, u)
				}
			}
		}
	}
}
