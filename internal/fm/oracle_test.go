package fm

// Differential "Oracle" tests for the workspace-reusing refinement
// paths: a Config.WS threaded through many runs must change nothing —
// not the RNG stream, not a single block assignment — and every
// reported cut must survive internal/oracle's from-scratch recount.

import (
	"math/rand"
	"testing"

	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
	"mlpart/internal/oracle"
)

// TestOracleWorkspaceReuseBitIdentical runs every engine × bucket
// order over a sequence of random instances twice: once allocating
// per run (WS nil), once reusing a single Workspace across the whole
// sequence (so every buffer arrives dirty from the previous instance,
// including instances of different sizes). The partitions and results
// must be bit-identical, and the cuts must match the oracle.
func TestOracleWorkspaceReuseBitIdentical(t *testing.T) {
	engines := []Engine{EngineFM, EngineCLIP, EnginePROP, EngineCLIPPROP}
	orders := []gainbucket.Order{gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random}
	for _, eng := range engines {
		for _, order := range orders {
			ws := &Workspace{}
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(900 + seed))
				// Alternate sizes so reuse shrinks and regrows buffers.
				n := 80 + int(seed%3)*70
				h := randomH(rng, n, n+20, 6)

				cfgFresh := Config{Engine: eng, Order: order}
				pFresh, resFresh, err := Partition(h, nil, cfgFresh, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}

				cfgWS := Config{Engine: eng, Order: order, WS: ws}
				pWS, resWS, err := Partition(h, nil, cfgWS, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}

				if resFresh != resWS {
					t.Fatalf("engine %v order %v seed %d: results diverge: %+v vs %+v",
						eng, order, seed, resFresh, resWS)
				}
				for v := range pFresh.Part {
					if pFresh.Part[v] != pWS.Part[v] {
						t.Fatalf("engine %v order %v seed %d: partitions diverge at cell %d",
							eng, order, seed, v)
					}
				}
				if want := oracle.WeightedCut(h, pWS); resWS.Cut != want {
					t.Fatalf("engine %v order %v seed %d: reported cut %d, oracle %d",
						eng, order, seed, resWS.Cut, want)
				}
			}
		}
	}
}

// TestOracleRefineBalancedMatchesPartition pins the contract that let
// the uncoarsening loops go in-place: RefineBalanced on a clone is
// exactly Partition with an initial solution — same result, same RNG
// consumption — and its cut survives the oracle recount.
func TestOracleRefineBalancedMatchesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h := randomH(rng, 150, 170, 5)
	init := hypergraph.RandomPartition(h, 2, 0.1, rand.New(rand.NewSource(1)))

	pVia, resVia, err := Partition(h, init, Config{Engine: EngineCLIP}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	inPlace := init.Clone()
	resIn, err := RefineBalanced(h, inPlace, Config{Engine: EngineCLIP}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if resVia != resIn {
		t.Fatalf("results diverge: %+v vs %+v", resVia, resIn)
	}
	for v := range pVia.Part {
		if pVia.Part[v] != inPlace.Part[v] {
			t.Fatalf("partitions diverge at cell %d", v)
		}
	}
	if want := oracle.WeightedCut(h, inPlace); resIn.Cut != want {
		t.Fatalf("reported cut %d, oracle %d", resIn.Cut, want)
	}
	// Partition must not have mutated the caller's initial solution.
	check := hypergraph.RandomPartition(h, 2, 0.1, rand.New(rand.NewSource(1)))
	for v := range init.Part {
		if init.Part[v] != check.Part[v] {
			t.Fatal("Partition mutated the caller's initial partition")
		}
	}
}
