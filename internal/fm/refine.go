package fm

import (
	"fmt"
	"math/rand"

	"mlpart/internal/faultinject"
	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
)

// Partition implements the FMPartition procedure of Fig. 2: it takes
// a netlist and an initial solution and returns a refined
// bipartitioning. If initial is nil a random starting solution is
// generated. If the initial solution violates the balance bound (as a
// projected solution may, §III.B) it is first rebalanced by randomly
// moving modules from the larger block to the smaller.
//
// The returned partition is a fresh object; initial is not modified.
func Partition(h *hypergraph.Hypergraph, initial *hypergraph.Partition, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	var p *hypergraph.Partition
	if initial == nil {
		p = hypergraph.RandomPartition(h, 2, cfg.Tolerance, rng)
	} else {
		if initial.K != 2 {
			return nil, Result{}, fmt.Errorf("fm: initial partition has K=%d, want 2", initial.K)
		}
		if err := initial.Validate(h.NumCells()); err != nil {
			return nil, Result{}, err
		}
		p = initial.Clone()
	}
	res, err := RefineBalanced(h, p, cfg, rng)
	return p, res, err
}

// RefineBalanced is Partition without the initial-solution clone: it
// rebalances p in place if the balance bound is violated (as a
// projected solution may be, §III.B), then refines in place. For
// callers that own p outright — the multilevel projection loop — this
// avoids one partition allocation per level; the result is
// bit-identical to Partition on the same inputs (Clone consumes no
// randomness).
func RefineBalanced(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand) (Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return Result{}, err
	}
	if p.K != 2 {
		return Result{}, fmt.Errorf("fm: initial partition has K=%d, want 2", p.K)
	}
	if err := p.Validate(h.NumCells()); err != nil {
		return Result{}, err
	}
	bound := hypergraph.Balance(h, 2, cfg.Tolerance)
	if !p.IsBalanced(h, bound) {
		moved := p.Rebalance(h, bound, rng)
		cfg.Telemetry.RecordRebalance(moved)
	}
	return Refine(h, p, cfg, rng)
}

// Refine improves the bipartition p in place using the configured
// engine. p must be a valid, balanced 2-way partition of h.
func Refine(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand) (Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return Result{}, err
	}
	if p.K != 2 {
		return Result{}, fmt.Errorf("fm: refine with K=%d, want 2", p.K)
	}
	if err := p.Validate(h.NumCells()); err != nil {
		return Result{}, err
	}
	if cfg.Engine == EnginePROP || cfg.Engine == EngineCLIPPROP {
		return newPropRefiner(h, p, cfg, rng).run(), nil
	}
	r := newRefiner(h, p, cfg, rng)
	res := r.run()
	return res, nil
}

// refiner holds all per-run state. It is rebuilt for each Refine
// call, but the backing arrays live in a Workspace (the caller's via
// Config.WS, or a throwaway) so repeated calls reuse memory; within a
// run, buckets are rebuilt per pass (the paper's implementation
// reinitializes the entire bucket structure before each pass).
type refiner struct {
	h   *hypergraph.Hypergraph
	p   *hypergraph.Partition
	cfg Config
	rng *rand.Rand
	ws  *Workspace

	bound hypergraph.BalanceBound
	areas [2]int64

	active  []bool     // net considered during refinement
	pc      [2][]int32 // per net: pin count on each side
	gain    []int32    // current real cut gain of moving each cell
	initKey []int32    // CLIP: gain at pass start (bucket key = gain − initKey)
	locked  []bool
	buckets [2]*gainbucket.Structure

	// move log for rollback
	moveCells []int32
	moveGains []int32

	activeCut int // number of active nets currently cut

	// sub-round engine only (subround.go): stamp generation of the
	// affected-cell gather.
	stampGen int32
}

func newRefiner(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand) *refiner {
	n := h.NumCells()
	ws := cfg.grab()
	// Every buffer is grown in place on the workspace and aliased by
	// the refiner, so growth is retained across runs. None of them
	// need clearing: active, pc, gain and locked are rewritten in full
	// before any read (newRefiner/computePinCounts/initPass), and the
	// move log starts each run truncated to zero length.
	ws.active = growBool(ws.active, h.NumNets())
	ws.gain = growInt32(ws.gain, n)
	ws.locked = growBool(ws.locked, n)
	ws.moveCells = growInt32(ws.moveCells, n)
	ws.moveGains = growInt32(ws.moveGains, n)
	ws.pc[0] = growInt32(ws.pc[0], h.NumNets())
	ws.pc[1] = growInt32(ws.pc[1], h.NumNets())
	r := &refiner{
		h: h, p: p, cfg: cfg, rng: rng, ws: ws,
		bound:     hypergraph.Balance(h, 2, cfg.Tolerance),
		active:    ws.active,
		gain:      ws.gain,
		locked:    ws.locked,
		moveCells: ws.moveCells[:0],
		moveGains: ws.moveGains[:0],
	}
	r.pc[0] = ws.pc[0]
	r.pc[1] = ws.pc[1]
	if cfg.Engine == EngineCLIP {
		ws.initKey = growInt32(ws.initKey, n)
		r.initKey = ws.initKey
	}
	for e := 0; e < h.NumNets(); e++ {
		r.active[e] = cfg.MaxNetSize < 0 || h.NetSize(e) <= cfg.MaxNetSize
	}
	maxDeg := h.MaxWeightedDegree(cfg.MaxNetSize)
	bucketRange := maxDeg
	if cfg.Engine == EngineCLIP {
		bucketRange = 2 * maxDeg // §II.B: the range of bucket indices must double
	}
	r.buckets[0] = ws.bucket(0, n, bucketRange, cfg.Order, rng)
	r.buckets[1] = ws.bucket(1, n, bucketRange, cfg.Order, rng)
	if cfg.Par != nil {
		r.initSubround()
	}
	return r
}

func (r *refiner) run() Result {
	res := Result{InitialCut: r.p.WeightedCut(r.h)}
	r.computePinCounts()
	maxPasses := r.cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = 1 << 30
	}
	for pass := 0; pass < maxPasses; pass++ {
		if r.cfg.Stop != nil && r.cfg.Stop() {
			res.Interrupted = true
			break
		}
		if r.cfg.Inject != nil && r.fireFault(&res) {
			break
		}
		cutBefore := r.activeCut
		var improved, applied, tried int
		if r.cfg.Par != nil {
			var aborted bool
			improved, applied, tried, aborted = r.runPassSub()
			if aborted {
				res.Interrupted = true
			}
		} else {
			improved, applied, tried = r.runPass()
		}
		r.cfg.Telemetry.RecordPass(r.cfg.Engine.String(), res.Passes, cutBefore, r.activeCut, tried, applied)
		res.Passes++
		res.Moves += applied
		res.MovesTried += tried
		if res.Interrupted || improved <= 0 {
			break
		}
	}
	res.Cut = r.p.WeightedCut(r.h)
	res.ActiveCut = r.activeCut
	// Hand any move-log growth back to the workspace (appends stay
	// within the pre-grown capacity today, but do not rely on it).
	r.ws.moveCells = r.moveCells
	r.ws.moveGains = r.moveGains
	return res
}

// fireFault hits the fm.pass fault site. Cancel behaves exactly like
// a Stop hook firing at this boundary (returns true to abort);
// corrupt flips one cell across the cut *without* updating the
// incremental state — res.Cut stays truthful (recounted at the end)
// while res.ActiveCut goes stale, which the audit layer must catch.
func (r *refiner) fireFault(res *Result) bool {
	switch r.cfg.Inject.Fire(faultinject.SiteFMPass) {
	case faultinject.ActCancel:
		res.Interrupted = true
		return true
	case faultinject.ActCorrupt:
		if n := r.h.NumCells(); n > 0 {
			v := r.rng.Intn(n)
			r.p.Part[v] = 1 - r.p.Part[v]
		}
	}
	return false
}

// computePinCounts fills pc and activeCut from the current partition.
func (r *refiner) computePinCounts() {
	for e := 0; e < r.h.NumNets(); e++ {
		r.pc[0][e] = 0
		r.pc[1][e] = 0
	}
	for v := 0; v < r.h.NumCells(); v++ {
		s := r.p.Part[v]
		for _, e := range r.h.Nets(int(v)) {
			r.pc[s][e]++
		}
	}
	r.activeCut = 0
	for e := 0; e < r.h.NumNets(); e++ {
		if r.active[e] && r.pc[0][e] > 0 && r.pc[1][e] > 0 {
			r.activeCut += int(r.h.NetWeight(e))
		}
	}
	r.areas[0], r.areas[1] = 0, 0
	for v := 0; v < r.h.NumCells(); v++ {
		r.areas[r.p.Part[v]] += r.h.Area(v)
	}
}

// computeGain returns the cut gain of moving cell v to the other
// side, considering only active nets.
func (r *refiner) computeGain(v int32) int32 {
	s := r.p.Part[v]
	var g int32
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := r.h.NetWeight(int(e))
		if r.pc[s][e] == 1 {
			g += w
		}
		if r.pc[1-s][e] == 0 {
			g -= w
		}
	}
	return g
}

// onBoundary reports whether v is incident to a cut active net.
func (r *refiner) onBoundary(v int32) bool {
	for _, e := range r.h.Nets(int(v)) {
		if r.active[e] && r.pc[0][e] > 0 && r.pc[1][e] > 0 {
			return true
		}
	}
	return false
}

// key returns the bucket key of cell v under the configured engine.
func (r *refiner) key(v int32) int {
	if r.cfg.Engine == EngineCLIP {
		return int(r.gain[v] - r.initKey[v])
	}
	return int(r.gain[v])
}

// initPass rebuilds gains, buckets and locks for a new pass.
func (r *refiner) initPass() {
	n := r.h.NumCells()
	r.buckets[0].Clear()
	r.buckets[1].Clear()
	for v := 0; v < n; v++ {
		r.locked[v] = false
		r.gain[v] = r.computeGain(int32(v))
	}
	if r.cfg.Engine == EngineCLIP {
		copy(r.initKey, r.gain)
	}
	for v := int32(0); int(v) < n; v++ {
		if r.cfg.Boundary && !r.onBoundary(v) {
			continue
		}
		r.buckets[r.p.Part[v]].Insert(v, int(r.gain[v]))
	}
	if r.cfg.Engine == EngineCLIP {
		// CLIP preprocessing: concatenate all buckets into bucket 0,
		// highest initial gain first. Keys are now deltas.
		r.buckets[0].ConcatenateToZero()
		r.buckets[1].ConcatenateToZero()
	}
	r.moveCells = r.moveCells[:0]
	r.moveGains = r.moveGains[:0]
}

// feasible reports whether moving v from its side keeps the solution
// inside the balance bound.
func (r *refiner) feasible(v int32) bool {
	s := r.p.Part[v]
	a := r.h.Area(int(v))
	return r.areas[1-s]+a <= r.bound.Hi && r.areas[s]-a >= r.bound.Lo
}

// selectMove picks the next base cell: the highest-key feasible cell
// over both bucket structures; ties between the two sides go to the
// side with larger area (then side 0). With lookahead enabled, cells
// sharing the top feasible key are compared by higher-level gains.
// Returns -1 if no feasible move exists.
func (r *refiner) selectMove() int32 {
	cand := [2]int32{-1, -1}
	key := [2]int{0, 0}
	for s := 0; s < 2; s++ {
		r.buckets[s].Iterate(func(v int32, k int) bool {
			if r.feasible(v) {
				cand[s] = v
				key[s] = k
				return false
			}
			return true
		})
	}
	var v int32
	switch {
	case cand[0] < 0 && cand[1] < 0:
		return -1
	case cand[0] < 0:
		v = cand[1]
	case cand[1] < 0:
		v = cand[0]
	case key[0] > key[1]:
		v = cand[0]
	case key[1] > key[0]:
		v = cand[1]
	case r.areas[0] >= r.areas[1]:
		v = cand[0]
	default:
		v = cand[1]
	}
	if r.cfg.Lookahead >= 2 {
		v = r.lookaheadRefine(v)
	}
	return v
}

// applyMove moves v to the other side, locking it, updating pin
// counts, neighbor gains and bucket positions, and logging the move.
func (r *refiner) applyMove(v int32) {
	from := r.p.Part[v]
	to := 1 - from
	realGain := r.gain[v]
	if r.buckets[from].Contains(v) {
		r.buckets[from].Remove(v)
	}
	r.locked[v] = true
	r.areas[from] -= r.h.Area(int(v))
	r.areas[to] += r.h.Area(int(v))

	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := r.h.NetWeight(int(e))
		pcF, pcT := r.pc[from], r.pc[to]
		pins := r.h.Pins(int(e))
		// Before the move: if the to-side count is 0 this net was
		// uncut and will become cut — every free pin gains from a
		// follow-up move; if it is 1, the lone to-side free cell
		// loses its incentive.
		switch pcT[e] {
		case 0:
			for _, u := range pins {
				if !r.locked[u] {
					r.adjustGain(u, +w)
				}
			}
		case 1:
			for _, u := range pins {
				if !r.locked[u] && r.p.Part[u] == to {
					r.adjustGain(u, -w)
				}
			}
		}
		// Track the active cut as nets cross the boundary.
		if pcT[e] == 0 {
			r.activeCut += int(w) // net becomes cut
		}
		pcF[e]--
		pcT[e]++
		if pcF[e] == 0 {
			r.activeCut -= int(w) // net becomes uncut
		}
		// After the move: if the from-side count dropped to 0 the net
		// is now uncut — follow-up moves no longer help; if it
		// dropped to 1, the last from-side free cell could uncut it.
		switch pcF[e] {
		case 0:
			for _, u := range pins {
				if !r.locked[u] {
					r.adjustGain(u, -w)
				}
			}
		case 1:
			for _, u := range pins {
				if !r.locked[u] && r.p.Part[u] == from {
					r.adjustGain(u, +w)
				}
			}
		}
	}
	r.p.Part[v] = int32(to)
	r.moveCells = append(r.moveCells, v)
	r.moveGains = append(r.moveGains, realGain)
}

// adjustGain shifts the gain of free cell u by delta and keeps its
// bucket position consistent. In boundary mode a touched interior
// cell enters the buckets here ("as needed" gain computation).
func (r *refiner) adjustGain(u int32, delta int32) {
	r.gain[u] += delta
	s := r.p.Part[u]
	if r.buckets[s].Contains(u) {
		r.buckets[s].Update(u, r.key(u))
	} else if r.cfg.Boundary {
		r.buckets[s].Insert(u, r.key(u))
	}
}

// runPass executes one FM pass and rolls back to the best prefix.
// It returns the realized gain (initial cut − best cut within the
// pass, over active nets), the number of moves kept, and the number
// tried.
func (r *refiner) runPass() (improved, applied, tried int) {
	r.initPass()
	bestGain, cumGain := 0, 0
	bestLen := 0
	sinceBest := 0
	// Early-exit window: after this many consecutive non-improving
	// moves the pass is abandoned (Chaco/Metis-style).
	window := r.h.NumCells()/4 + 50
	// CDIP backtrack trigger: a cumulative loss of one maximum
	// weighted degree below the best prefix means the sequence needs
	// more than one perfect move to recover.
	backtrackAt := r.h.MaxWeightedDegree(r.cfg.MaxNetSize)
	if backtrackAt < 2 {
		backtrackAt = 2
	}
	for {
		v := r.selectMove()
		if v < 0 {
			break
		}
		cumGain += int(r.gain[v])
		tried++
		r.applyMove(v)
		if cumGain > bestGain {
			bestGain = cumGain
			bestLen = len(r.moveCells)
			sinceBest = 0
			continue
		}
		sinceBest++
		if r.cfg.EarlyExit && sinceBest > window {
			break
		}
		if r.cfg.Backtrack && bestGain-cumGain >= backtrackAt {
			// Reverse the bad sequence; the reversed cells stay
			// locked in place so a different sequence is tried.
			for i := len(r.moveCells) - 1; i >= bestLen; i-- {
				r.undoMove(r.moveCells[i])
			}
			r.moveCells = r.moveCells[:bestLen]
			r.moveGains = r.moveGains[:bestLen]
			cumGain = bestGain
			sinceBest = 0
			r.refreshGains()
		}
	}
	// Roll back the suffix after the best prefix.
	for i := len(r.moveCells) - 1; i >= bestLen; i-- {
		r.undoMove(r.moveCells[i])
	}
	r.moveCells = r.moveCells[:bestLen]
	return bestGain, bestLen, tried
}

// refreshGains recomputes the gains of all free cells and rebuilds
// the bucket structures mid-pass (after a CDIP backtrack invalidated
// the incremental state). CLIP keys keep their pass-start baseline.
func (r *refiner) refreshGains() {
	r.buckets[0].Clear()
	r.buckets[1].Clear()
	for v := int32(0); int(v) < r.h.NumCells(); v++ {
		if r.locked[v] {
			continue
		}
		r.gain[v] = r.computeGain(v)
		if r.cfg.Boundary && !r.onBoundary(v) {
			continue
		}
		r.buckets[r.p.Part[v]].Insert(v, r.key(v))
	}
}

// undoMove reverses a logged move of cell v: flips it back and
// restores pin counts, areas and the active cut. Gains are left
// stale; the next pass recomputes them.
func (r *refiner) undoMove(v int32) {
	cur := r.p.Part[v] // side it was moved to
	orig := 1 - cur
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := int(r.h.NetWeight(int(e)))
		if r.pc[orig][e] == 0 {
			r.activeCut += w
		}
		r.pc[cur][e]--
		r.pc[orig][e]++
		if r.pc[cur][e] == 0 {
			r.activeCut -= w
		}
	}
	r.areas[cur] -= r.h.Area(int(v))
	r.areas[orig] += r.h.Area(int(v))
	r.p.Part[v] = int32(orig)
}
