package fm

// Sub-round-synchronous parallel FM/CLIP (Config.Par != nil).
//
// The serial engines interleave selection and gain maintenance: every
// applied move immediately cascades gain updates through its nets, so
// the next selection sees them. That dependency chain is inherently
// sequential. The parallel engine breaks it into fixed sub-rounds:
//
//  1. Select up to subroundSize(n) moves serially on the *frozen*
//     bucket keys from the previous synchronization point, tracking
//     feasibility against tentatively-updated areas so the whole
//     batch stays inside the balance bound in every prefix. A cell
//     found area-blocked during the scan is pulled from its bucket
//     and deferred to the next synchronization point, so the scan
//     examines each cell at most once per sub-round instead of once
//     per selection (see selectMoveSub).
//  2. Apply the selected moves serially, in selection order, with the
//     real gain of each move recomputed live against the current pin
//     counts (fixed-order conflict resolution: when two selected
//     moves interact, the later one is applied with its true — often
//     lower — gain rather than skipped, so the move log and the
//     cumulative-gain bookkeeping stay exact).
//  3. Recompute the gains of every free cell incident to a touched
//     net — the only cells whose gains changed — in parallel over
//     fixed ranges (computeGain is a pure read of pin counts), then
//     fold the new keys into the gain buckets serially in gather
//     order.
//
// Every ordering decision (selection, application, bucket updates)
// happens on the calling goroutine against state that is a pure
// function of the input and seed; the workers only evaluate pure
// per-cell gain queries over fixed index ranges. Cuts, partitions and
// move logs are therefore bit-identical across worker counts — a pool
// with one worker (which runs the ranges inline) is the differential
// baseline the determinism suites compare against.
//
// This is a *different algorithm* than the serial engines — frozen
// keys mean selection can be up to one sub-round stale — so
// IntraParallelism 0 and 1 legitimately produce different (equally
// valid) solutions, while all values >= 1 produce identical ones.

import (
	"mlpart/internal/faultinject"
)

// subroundSize is the synchronization granularity: how many moves are
// selected on frozen keys before gains are reconciled. A pure function
// of the cell count only — never of the worker count — so the move
// sequence is identical for every pool size. Small enough to keep
// selection close to the serial gain ordering, large enough to
// amortize the parallel recompute barrier. The 256 cap measured best
// on both axes in the 2k–16k sweep: 512 trades ~2% cut quality for
// ~10% time, 128 loses both.
func subroundSize(n int) int {
	s := n / 16
	if s < 8 {
		s = 8
	}
	if s > 256 {
		s = 256
	}
	return s
}

// initSubround sizes and clears the sub-round scratch (selection
// batch, affected-cell gather, and the stamp arrays used to dedup the
// gather). Called once per Refine run on the parallel path.
func (r *refiner) initSubround() {
	n := r.h.NumCells()
	ws := r.ws
	ws.subSel = growInt32(ws.subSel, n)
	ws.deferred = growInt32(ws.deferred, n)[:0]
	ws.affected = growInt32(ws.affected, n)
	ws.affectedKey = growInt32(ws.affectedKey, n)
	ws.cellStamp = growInt32(ws.cellStamp, n)
	ws.netStamp = growInt32(ws.netStamp, r.h.NumNets())
	clear(ws.cellStamp)
	clear(ws.netStamp)
	r.stampGen = 0
}

// initPassPar is initPass with the gain recomputation fanned out over
// the pool; the bucket inserts (the ordering-sensitive part) stay
// serial in cell-index order, so the resulting bucket state is
// identical to initPass byte for byte.
func (r *refiner) initPassPar() {
	n := r.h.NumCells()
	r.buckets[0].Clear()
	r.buckets[1].Clear()
	gain, locked := r.gain, r.locked
	r.cfg.Par.Run(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			locked[v] = false
			gain[v] = r.computeGain(int32(v))
		}
	})
	if r.cfg.Engine == EngineCLIP {
		copy(r.initKey, r.gain)
	}
	for v := int32(0); int(v) < n; v++ {
		if r.cfg.Boundary && !r.onBoundary(v) {
			continue
		}
		r.buckets[r.p.Part[v]].Insert(v, int(r.gain[v]))
	}
	if r.cfg.Engine == EngineCLIP {
		r.buckets[0].ConcatenateToZero()
		r.buckets[1].ConcatenateToZero()
	}
	r.moveCells = r.moveCells[:0]
	r.moveGains = r.moveGains[:0]
}

// refreshGainsPar is refreshGains with the same split: parallel pure
// recompute, serial rebuild in cell-index order.
func (r *refiner) refreshGainsPar() {
	r.buckets[0].Clear()
	r.buckets[1].Clear()
	n := r.h.NumCells()
	gain, locked := r.gain, r.locked
	r.cfg.Par.Run(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if locked[v] {
				continue
			}
			gain[v] = r.computeGain(int32(v))
		}
	})
	for v := int32(0); int(v) < n; v++ {
		if r.locked[v] {
			continue
		}
		if r.cfg.Boundary && !r.onBoundary(v) {
			continue
		}
		r.buckets[r.p.Part[v]].Insert(v, r.key(v))
	}
}

// selectMoveSub is selectMove for the sub-round engine. On frozen
// keys the serial scan is the bottleneck: once a batch's tentative
// areas reach the balance bound, the top of a bucket accumulates
// area-blocked cells, and re-scanning that prefix for every selection
// is quadratic in the batch size. Instead, every area-blocked cell
// encountered is pulled out of its bucket and deferred for the
// remainder of the sub-round — each cell is examined at most once per
// sub-round, and reinsertDeferred returns the survivors at the
// synchronization point. A deferred cell whose target side becomes
// light again mid-batch is therefore skipped until the next
// sub-round: a deliberate, deterministic divergence from the serial
// engine's per-move re-scan.
func (r *refiner) selectMoveSub() int32 {
	cand := [2]int32{-1, -1}
	key := [2]int{0, 0}
	for s := 0; s < 2; s++ {
		base := len(r.ws.deferred)
		r.buckets[s].Iterate(func(v int32, k int) bool {
			if r.feasible(v) {
				cand[s] = v
				key[s] = k
				return false
			}
			r.ws.deferred = append(r.ws.deferred, v)
			return true
		})
		for _, v := range r.ws.deferred[base:] {
			r.buckets[s].Remove(v)
		}
	}
	var v int32
	switch {
	case cand[0] < 0 && cand[1] < 0:
		return -1
	case cand[0] < 0:
		v = cand[1]
	case cand[1] < 0:
		v = cand[0]
	case key[0] > key[1]:
		v = cand[0]
	case key[1] > key[0]:
		v = cand[1]
	case r.areas[0] >= r.areas[1]:
		v = cand[0]
	default:
		v = cand[1]
	}
	if r.cfg.Lookahead >= 2 {
		v = r.lookaheadRefine(v)
	}
	return v
}

// reinsertDeferred returns the sub-round's area-blocked cells to the
// buckets in deferral order. Cells the reconciliation already
// re-inserted (incident to a touched net) are left alone; the rest
// re-enter with their current key. Deferred cells are never locked —
// out of the buckets they cannot be selected within the batch.
func (r *refiner) reinsertDeferred() {
	for _, v := range r.ws.deferred {
		s := r.p.Part[v]
		if r.buckets[s].Contains(v) {
			continue
		}
		if r.cfg.Boundary && !r.onBoundary(v) {
			continue
		}
		r.buckets[s].Insert(v, r.key(v))
	}
	r.ws.deferred = r.ws.deferred[:0]
}

// applyMoveSub moves v without any gain or bucket maintenance (the
// sub-round reconciliation handles those in batch) and without area
// transfer (the selection phase already performed it tentatively): pin
// counts, the incremental active cut, the partition side and the move
// log. v is already locked and out of the buckets.
func (r *refiner) applyMoveSub(v, realGain int32) {
	from := r.p.Part[v]
	to := 1 - from
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := int(r.h.NetWeight(int(e)))
		if r.pc[to][e] == 0 {
			r.activeCut += w // net becomes cut
		}
		r.pc[from][e]--
		r.pc[to][e]++
		if r.pc[from][e] == 0 {
			r.activeCut -= w // net becomes uncut
		}
	}
	r.p.Part[v] = int32(to)
	r.moveCells = append(r.moveCells, v)
	r.moveGains = append(r.moveGains, realGain)
}

// updateAffected reconciles gains after a sub-round: gather the free
// cells incident to any net a selected move touched (stamp-deduped, in
// move order — the only cells whose gains can have changed), recompute
// their gains in parallel over fixed ranges, and fold the new keys
// into the buckets serially in gather order. Bucket keys are only
// touched when they actually changed, so bucket positions (and hence
// LIFO/FIFO tie-breaking) remain a deterministic function of the move
// history. In boundary mode an absent affected cell is inserted — a
// deterministic superset of the serial engine's lazy insertion.
func (r *refiner) updateAffected(sel []int32) {
	r.stampGen++
	gen := r.stampGen
	aff := r.ws.affected[:0]
	oldKey := r.ws.affectedKey[:0]
	cellStamp, netStamp := r.ws.cellStamp, r.ws.netStamp
	for _, v := range sel {
		for _, e := range r.h.Nets(int(v)) {
			if !r.active[e] || netStamp[e] == gen {
				continue
			}
			netStamp[e] = gen
			for _, u := range r.h.Pins(int(e)) {
				if r.locked[u] || cellStamp[u] == gen {
					continue
				}
				cellStamp[u] = gen
				aff = append(aff, u)
				oldKey = append(oldKey, int32(r.key(u)))
			}
		}
	}
	r.ws.affected = aff
	r.ws.affectedKey = oldKey
	gain := r.gain
	r.cfg.Par.Run(len(aff), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := aff[i]
			gain[u] = r.computeGain(u)
		}
	})
	for i, u := range aff {
		s := r.p.Part[u]
		nk := r.key(u)
		if r.buckets[s].Contains(u) {
			if nk != int(oldKey[i]) {
				r.buckets[s].Update(u, nk)
			}
		} else if !r.cfg.Boundary || r.onBoundary(u) {
			r.buckets[s].Insert(u, nk)
		}
	}
}

// runPassSub executes one sub-round-synchronous pass and rolls back
// to the best prefix, mirroring runPass's contract. aborted reports
// that the fm.subround fault site cancelled the pass (treated by run
// as a Stop firing mid-pass: rollback still completes, the result is
// feasible, Interrupted is set).
func (r *refiner) runPassSub() (improved, applied, tried int, aborted bool) {
	r.initPassPar()
	// A previous pass can end mid-batch (early exit, fault abort) with
	// cells still parked in the deferral list; the rebuild above
	// restored them to the buckets.
	r.ws.deferred = r.ws.deferred[:0]
	bestGain, cumGain := 0, 0
	bestLen := 0
	sinceBest := 0
	window := r.h.NumCells()/4 + 50
	backtrackAt := r.h.MaxWeightedDegree(r.cfg.MaxNetSize)
	if backtrackAt < 2 {
		backtrackAt = 2
	}
	size := subroundSize(r.h.NumCells())
	done := false
	for !done {
		if r.cfg.Inject != nil {
			switch r.cfg.Inject.Fire(faultinject.SiteFMSubround) {
			case faultinject.ActCancel:
				aborted = true
			case faultinject.ActCorrupt:
				// Flip one cell without updating the incremental
				// state: Result.Cut stays truthful (recounted at the
				// end) while ActiveCut goes stale, which the audit
				// layer must catch.
				if n := r.h.NumCells(); n > 0 {
					v := r.rng.Intn(n)
					r.p.Part[v] = 1 - r.p.Part[v]
				}
			}
			if aborted {
				break
			}
		}
		// Selection on frozen keys. r.areas is advanced tentatively as
		// each move is chosen — selectMove's feasibility check and
		// side tie-break then see exactly the areas the batch will
		// produce, so every prefix of the batch respects the balance
		// bound. The apply phase below therefore skips area transfer.
		sel := r.ws.subSel[:0]
		for len(sel) < size {
			v := r.selectMoveSub()
			if v < 0 {
				break
			}
			s := r.p.Part[v]
			a := r.h.Area(int(v))
			r.areas[s] -= a
			r.areas[1-s] += a
			r.buckets[s].Remove(v)
			r.locked[v] = true
			sel = append(sel, v)
		}
		r.ws.subSel = sel
		if len(sel) == 0 {
			break // no feasible move left: the pass is over
		}
		// Fixed-order application with live-recomputed gains.
		for i, v := range sel {
			realGain := r.computeGain(v)
			cumGain += int(realGain)
			tried++
			r.applyMoveSub(v, realGain)
			if cumGain > bestGain {
				bestGain = cumGain
				bestLen = len(r.moveCells)
				sinceBest = 0
				continue
			}
			sinceBest++
			if r.cfg.EarlyExit && sinceBest > window {
				// Abandon the pass mid-batch: give the tentative area
				// transfer back for the selected-but-unapplied suffix
				// (those cells never moved).
				for _, u := range sel[i+1:] {
					s := r.p.Part[u]
					a := r.h.Area(int(u))
					r.areas[s] += a
					r.areas[1-s] -= a
				}
				done = true
				break
			}
		}
		if done {
			break
		}
		// CDIP backtrack, checked at the sub-round boundary (the
		// serial engines check per move; the cumulative-loss trigger
		// is the same).
		if r.cfg.Backtrack && bestGain-cumGain >= backtrackAt {
			for i := len(r.moveCells) - 1; i >= bestLen; i-- {
				r.undoMove(r.moveCells[i])
			}
			r.moveCells = r.moveCells[:bestLen]
			r.moveGains = r.moveGains[:bestLen]
			cumGain = bestGain
			sinceBest = 0
			// The full bucket rebuild re-admits the deferred cells.
			r.ws.deferred = r.ws.deferred[:0]
			r.refreshGainsPar()
			continue
		}
		r.updateAffected(sel)
		r.reinsertDeferred()
	}
	// Roll back the suffix after the best prefix.
	for i := len(r.moveCells) - 1; i >= bestLen; i-- {
		r.undoMove(r.moveCells[i])
	}
	r.moveCells = r.moveCells[:bestLen]
	return bestGain, bestLen, tried, aborted
}
