// Package fm implements Fiduccia–Mattheyses iterative-improvement
// bipartitioning with the innovations adopted by Alpert/Huang/Kahng
// (DAC 1997): LIFO gain buckets (§II.A, after Hagen et al.) and the
// CLIP cluster-oriented engine of Dutt & Deng (§II.B), plus the
// paper's §V extensions — Krishnamurthy-style lookahead tie-breaking,
// boundary initialization, and early pass termination.
//
// The FMPartition procedure of the paper maps onto Partition here:
// given a netlist and an initial solution (or nil for random), it
// returns a refined bipartitioning. Nets with more than MaxNetSize
// modules are ignored during refinement and reinserted when measuring
// solution quality, exactly as in §III.B.
package fm

import (
	"fmt"
	"math"

	"mlpart/internal/faultinject"
	"mlpart/internal/gainbucket"
	"mlpart/internal/intrapar"
	"mlpart/internal/telemetry"
)

// Engine selects the iterative-improvement gain scheme.
type Engine int

const (
	// EngineFM is classic Fiduccia–Mattheyses: cells are keyed in the
	// gain buckets by their actual cut gain.
	EngineFM Engine = iota
	// EngineCLIP is the CLIP algorithm of Dutt & Deng: after the
	// initial gains are computed the buckets are concatenated into
	// bucket zero (highest gain first) and thereafter only gain
	// *deltas* key the buckets, which makes adjacency to recently
	// moved cells dominate selection. The bucket index range doubles.
	EngineCLIP
	// EnginePROP is the probability-based gain computation of Dutt &
	// Deng [13] (§II.A): cells are scored by the expected cut benefit
	// under neighbor move probabilities. Non-discrete gains force a
	// heap instead of buckets, costing a runtime factor of ~4–8.
	EnginePROP
	// EngineCLIPPROP composes CLIP with PROP (the CL-PR variant of
	// Table VII): the heap is keyed on the PROP-gain delta since the
	// start of the pass.
	EngineCLIPPROP
)

func (e Engine) String() string {
	switch e {
	case EngineFM:
		return "FM"
	case EngineCLIP:
		return "CLIP"
	case EnginePROP:
		return "PROP"
	case EngineCLIPPROP:
		return "CL-PR"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Config parameterizes a refinement run. The zero value plus
// Normalize gives the paper's defaults: FM engine, LIFO buckets,
// r = 0.1, nets over 200 pins ignored.
type Config struct {
	// Engine selects FM or CLIP.
	Engine Engine
	// Order is the gain-bucket organization (LIFO, FIFO, Random) of
	// the §II.A tie-breaking study. Default LIFO.
	Order gainbucket.Order
	// Tolerance is the balance parameter r of §I: block areas may
	// deviate from A(V)/2 by max(A(v*), r·A(V)/2). Default 0.1.
	Tolerance float64
	// MaxNetSize: nets with more modules are ignored during
	// refinement (they are still counted when measuring quality).
	// Default 200 (§III.B). Negative means no limit.
	MaxNetSize int
	// MaxPasses bounds the number of FM passes; 0 means run until a
	// pass yields no improvement.
	MaxPasses int
	// Lookahead enables Krishnamurthy-style higher-level gain
	// tie-breaking among cells in the top bucket: 0 or 1 disables,
	// 2 and 3 compare second/third level gains (§II.A / §V
	// extension).
	Lookahead int
	// Boundary, when true, initially inserts only cells incident to
	// cut nets into the gain buckets; interior cells enter lazily
	// when a neighbor's move changes their gain (§V future work,
	// after Hendrickson & Leland).
	Boundary bool
	// EarlyExit, when true, terminates a pass once a long suffix of
	// moves has failed to improve on the pass best (§V future work,
	// after Chaco/Metis early pass termination).
	EarlyExit bool
	// InitialProb is p₀ of the PROP engines (probability that a free
	// cell will move). Default 0.95 per [13]. Ignored by FM and CLIP.
	InitialProb float64
	// Backtrack enables CDIP-style move reversal (§II.B, after Dutt &
	// Deng's CDIP): when the cumulative gain of a pass falls a full
	// maximum-degree below the best prefix — a sequence of bad moves
	// unlikely to be recovered — the sequence is reversed and the
	// reversed cells stay locked in place, forcing the pass to try a
	// different sequence instead of riding out the bad one. Composes
	// with CLIP and lookahead (the paper's CD-LA3 configuration).
	// Not supported by the PROP engines.
	Backtrack bool
	// Stop, when non-nil, is polled at pass boundaries; returning true
	// aborts refinement cooperatively. The partition is left in its
	// best-prefix state (rollback always completes), so an interrupted
	// run still yields a feasible solution with Result.Interrupted set.
	Stop func() bool
	// Inject optionally arms deterministic fault injection at the
	// fm.pass site (pass boundaries); nil costs one pointer check.
	Inject *faultinject.Injector
	// Telemetry optionally records per-pass statistics (cut
	// before/after, moves tried/kept, rollback depth) and rebalance
	// counts; nil costs one pointer check per pass.
	Telemetry *telemetry.Collector
	// Par optionally selects the sub-round-synchronous parallel
	// engine (subround.go) for FM and CLIP, fanning gain recomputation
	// out over the pool's workers. nil keeps the serial engines. The
	// parallel engine is bit-identical across pool sizes — a one-worker
	// pool runs the same algorithm inline — but is a *different*
	// algorithm than the serial one (selection keys can be one
	// sub-round stale), so nil and non-nil legitimately differ. The
	// PROP engines ignore Par and always run serially. Like WS, a pool
	// belongs to one pipeline attempt at a time.
	Par *intrapar.Pool
	// WS optionally supplies reusable scratch memory (gain arrays,
	// bucket structures, move logs) shared across successive runs,
	// making refinement allocation-free in steady state. Results are
	// bit-identical with or without it. A Workspace must not be shared
	// across goroutines; nil allocates scratch per run.
	WS *Workspace
}

// Normalize fills in defaults and validates ranges.
func (c Config) Normalize() (Config, error) {
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
	if math.IsNaN(c.Tolerance) || c.Tolerance < 0 || c.Tolerance >= 1 {
		return c, fmt.Errorf("fm: tolerance %v outside [0,1)", c.Tolerance)
	}
	if c.MaxNetSize == 0 {
		c.MaxNetSize = 200
	}
	if c.MaxPasses < 0 {
		return c, fmt.Errorf("fm: negative MaxPasses %d", c.MaxPasses)
	}
	if c.Lookahead < 0 || c.Lookahead > 3 {
		return c, fmt.Errorf("fm: lookahead level %d outside [0,3]", c.Lookahead)
	}
	switch c.Engine {
	case EngineFM, EngineCLIP, EnginePROP, EngineCLIPPROP:
	default:
		return c, fmt.Errorf("fm: unknown engine %d", int(c.Engine))
	}
	if c.InitialProb == 0 {
		c.InitialProb = DefaultInitialProb
	}
	if math.IsNaN(c.InitialProb) || c.InitialProb < 0 || c.InitialProb >= 1 {
		return c, fmt.Errorf("fm: initial probability %v outside [0,1)", c.InitialProb)
	}
	if c.Engine == EnginePROP || c.Engine == EngineCLIPPROP {
		if c.Boundary {
			return c, fmt.Errorf("fm: boundary mode is not supported by the PROP engines")
		}
		if c.Lookahead > 1 {
			return c, fmt.Errorf("fm: lookahead is not supported by the PROP engines")
		}
		if c.Backtrack {
			return c, fmt.Errorf("fm: backtracking is not supported by the PROP engines")
		}
	}
	switch c.Order {
	case gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random:
	default:
		return c, fmt.Errorf("fm: unknown bucket order %d", int(c.Order))
	}
	return c, nil
}

// Result reports what a refinement run did.
type Result struct {
	// Cut is the final cut counting all nets, including any the
	// engine ignored for speed.
	Cut int
	// InitialCut is the cut of the starting solution (all nets).
	InitialCut int
	// Passes is the number of FM passes executed.
	Passes int
	// Moves is the total number of cell moves applied (after
	// rollback, i.e. moves that survived into the returned solution).
	Moves int
	// MovesTried is the total number of moves attempted across all
	// passes, including rolled-back ones.
	MovesTried int
	// Interrupted reports that Config.Stop ended the run before the
	// engine converged. The returned partition is still feasible.
	Interrupted bool
	// ActiveCut is the engine's incrementally maintained cut over
	// active nets (those within MaxNetSize) at the end of the run; -1
	// for the PROP engines, which do not keep an incremental counter.
	// Audits cross-check it against a from-scratch recount.
	ActiveCut int
}
