package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
)

func TestBoundaryModeMatchesQualityEnvelope(t *testing.T) {
	// Boundary FM must remain correct: never worsen, stay balanced,
	// report consistent cuts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 20+rng.Intn(60), 30+rng.Intn(80), 5)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		before := p.Cut(h)
		res, err := Refine(h, p, Config{Boundary: true}, rng)
		if err != nil {
			return false
		}
		bound := hypergraph.Balance(h, 2, 0.1)
		return res.Cut <= before && res.Cut == p.Cut(h) && p.IsBalanced(h, bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryFindsOptimumOnTwoClusters(t *testing.T) {
	h := twoClusters(t, 6)
	found := false
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, res, err := Partition(h, nil, Config{Boundary: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut == 1 {
			found = true
		}
	}
	if !found {
		t.Error("boundary FM never found optimum")
	}
}

func TestEarlyExitStillImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomH(rng, 120, 240, 5)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	before := p.Cut(h)
	res, err := Refine(h, p, Config{EarlyExit: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > before {
		t.Errorf("early-exit worsened: %d → %d", before, res.Cut)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
}

func TestEarlyExitTriesFewerMoves(t *testing.T) {
	// On a sizable instance, early exit should abandon pass suffixes,
	// so across identical seeds it tries no more moves than full FM.
	h := randomH(rand.New(rand.NewSource(33)), 300, 600, 4)
	full, _, err := Partition(h, nil, Config{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	_ = full
	var fullRes, earlyRes Result
	_, fullRes, err = Partition(h, nil, Config{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	_, earlyRes, err = Partition(h, nil, Config{EarlyExit: true}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	perPassFull := float64(fullRes.MovesTried) / float64(fullRes.Passes)
	perPassEarly := float64(earlyRes.MovesTried) / float64(earlyRes.Passes)
	if perPassEarly > perPassFull {
		t.Errorf("early exit tried more moves per pass (%.1f) than full FM (%.1f)",
			perPassEarly, perPassFull)
	}
}

func TestLookaheadLevels(t *testing.T) {
	for _, la := range []int{0, 2, 3} {
		for _, eng := range []Engine{EngineFM, EngineCLIP} {
			rng := rand.New(rand.NewSource(21))
			h := randomH(rng, 60, 120, 5)
			p, res, err := Partition(h, nil, Config{Lookahead: la, Engine: eng}, rng)
			if err != nil {
				t.Fatalf("la=%d eng=%v: %v", la, eng, err)
			}
			if res.Cut != p.Cut(h) {
				t.Errorf("la=%d eng=%v: cut mismatch", la, eng)
			}
			bound := hypergraph.Balance(h, 2, 0.1)
			if !p.IsBalanced(h, bound) {
				t.Errorf("la=%d eng=%v: unbalanced", la, eng)
			}
		}
	}
}

func TestLevelGainDefinition(t *testing.T) {
	// 4 cells: side 0 = {0,1}, side 1 = {2,3}.
	// net A = {0,1}: both free on side 0.
	// net B = {0,2}: cut.
	h := hypergraph.NewBuilder(4).
		AddNet(0, 1).
		AddNet(0, 2).
		MustBuild()
	p := &hypergraph.Partition{Part: []int32{0, 0, 1, 1}, K: 2}
	cfg, _ := Config{Lookahead: 2}.Normalize()
	r := newRefiner(h, p, cfg, rand.New(rand.NewSource(0)))
	r.computePinCounts()
	r.initPass()
	// γ2(0): net A has free(F)=2 → +1; net B: free(T of move, side 1)
	// = 1 = k−1 → −1. Total 0.
	if g := r.levelGain(0, 2); g != 0 {
		t.Errorf("levelGain(0,2) = %d, want 0", g)
	}
	// γ2(1): net A free(F)=2 → +1; no net on side 1 → total +1.
	if g := r.levelGain(1, 2); g != 1 {
		t.Errorf("levelGain(1,2) = %d, want 1", g)
	}
}

func TestCombinedExtensions(t *testing.T) {
	// All extensions on at once must still be sound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 30+rng.Intn(50), 60+rng.Intn(60), 4)
		p := hypergraph.RandomPartition(h, 2, 0.1, rng)
		before := p.Cut(h)
		res, err := Refine(h, p, Config{
			Engine: EngineCLIP, Boundary: true, EarlyExit: true, Lookahead: 3,
		}, rng)
		if err != nil {
			return false
		}
		return res.Cut <= before && res.Cut == p.Cut(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBacktrackSoundness(t *testing.T) {
	// CDIP-style backtracking must preserve all engine invariants:
	// never worsen, consistent cut, balance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 30+rng.Intn(60), 50+rng.Intn(80), 5)
		for _, eng := range []Engine{EngineFM, EngineCLIP} {
			p := hypergraph.RandomPartition(h, 2, 0.1, rng)
			before := p.Cut(h)
			res, err := Refine(h, p, Config{Engine: eng, Backtrack: true}, rng)
			if err != nil {
				return false
			}
			if res.Cut > before || res.Cut != p.Cut(h) {
				return false
			}
			if !p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBacktrackFindsOptimum(t *testing.T) {
	h := twoClusters(t, 8)
	found := false
	for seed := int64(0); seed < 10; seed++ {
		_, res, err := Partition(h, nil, Config{Backtrack: true}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut == 1 {
			found = true
		}
	}
	if !found {
		t.Error("backtracking FM never found the optimum")
	}
}

func TestBacktrackTriesFewerOrEqualBadMoves(t *testing.T) {
	// With backtracking, gains-consistency must hold after mid-pass
	// refreshes: run the white-box invariant under Backtrack.
	rng := rand.New(rand.NewSource(51))
	h := randomH(rng, 60, 130, 5)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	cfg, _ := Config{Backtrack: true}.Normalize()
	r := newRefiner(h, p, cfg, rng)
	r.computePinCounts()
	improved, _, _ := r.runPass()
	if improved < 0 {
		t.Error("negative pass gain")
	}
	// Gains of free cells must match recomputation after the pass.
	for u := int32(0); int(u) < h.NumCells(); u++ {
		if r.locked[u] {
			continue
		}
		if r.gain[u] != r.computeGain(u) {
			// After final rollback gains may be stale by design; only
			// check that a refresh restores consistency.
			r.refreshGains()
			if r.gain[u] != r.computeGain(u) {
				t.Fatalf("cell %d stale after refresh", u)
			}
			break
		}
	}
}

func TestBacktrackWithLookaheadCLIP(t *testing.T) {
	// The paper's CD-LA3 configuration: CLIP + backtrack + LA3.
	rng := rand.New(rand.NewSource(52))
	h := randomH(rng, 80, 160, 4)
	p, res, err := Partition(h, nil, Config{Engine: EngineCLIP, Backtrack: true, Lookahead: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
}

func TestBacktrackRejectedForPROP(t *testing.T) {
	if _, err := (Config{Engine: EnginePROP, Backtrack: true}).Normalize(); err == nil {
		t.Error("PROP+Backtrack accepted")
	}
}
