package fm

// Krishnamurthy-style lookahead tie-breaking (§II.A; "An Improved
// Min-Cut Algorithm for Partitioning VLSI Networks", IEEE ToC 1984).
//
// The first-level gain is the ordinary FM gain. The k-th level gain
// (k ≥ 2) of moving v from side F to side T counts nets that could
// become uncut after k−1 further moves minus nets whose removal from
// T is being foreclosed:
//
//	γ_k(v) = |{e ∋ v : no locked cell on F, free(F, e) = k}|
//	       − |{e ∋ v : no locked cell on T, free(T, e) = k−1}|
//
// where free(S, e) counts free cells of e on side S. Cells in the top
// bucket whose first-level keys tie are compared lexicographically on
// (γ_2, …, γ_r). Following the paper's observation that lookahead
// matters mostly with CLIP, the comparison uses real gains and is
// computed on demand only for the tied candidates.

// lookaheadScanLimit bounds how many equal-key candidates are
// compared, keeping selection O(1) amortized on degenerate buckets.
const lookaheadScanLimit = 32

// lockedFree returns (#locked, #free) pins of net e on side s.
func (r *refiner) lockedFree(e int32, s int32) (locked, free int32) {
	for _, u := range r.h.Pins(int(e)) {
		if r.p.Part[u] != s {
			continue
		}
		if r.locked[u] {
			locked++
		} else {
			free++
		}
	}
	return locked, free
}

// levelGain computes γ_k(v) for k ≥ 2.
func (r *refiner) levelGain(v int32, k int32) int32 {
	from := r.p.Part[v]
	to := 1 - from
	var g int32
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		w := r.h.NetWeight(int(e))
		lf, ff := r.lockedFree(e, from)
		if lf == 0 && ff == k {
			g += w
		}
		lt, ft := r.lockedFree(e, to)
		if lt == 0 && ft == k-1 {
			g -= w
		}
	}
	return g
}

// lookaheadRefine re-selects among the cells that tie with v on the
// first-level key in v's own bucket structure, comparing higher-level
// gains lexicographically. Only feasible cells are considered.
func (r *refiner) lookaheadRefine(v int32) int32 {
	s := r.p.Part[v]
	topKey := r.key(v)
	best := v
	bestVec := make([]int32, 0, r.cfg.Lookahead-1)
	for k := int32(2); int(k) <= r.cfg.Lookahead; k++ {
		bestVec = append(bestVec, r.levelGain(v, k))
	}
	scanned := 0
	r.buckets[s].Iterate(func(u int32, key int) bool {
		if key < topKey {
			return false // below the tie; stop
		}
		scanned++
		if scanned > lookaheadScanLimit {
			return false
		}
		if u == v || !r.feasible(u) {
			return true
		}
		// Compare lexicographically on (γ_2, ..., γ_r).
		better := false
		for i := range bestVec {
			g := r.levelGain(u, int32(i+2))
			if g > bestVec[i] {
				better = true
			}
			if g != bestVec[i] {
				if better {
					best = u
					for j := range bestVec {
						bestVec[j] = r.levelGain(u, int32(j+2))
					}
				}
				break
			}
		}
		return true
	})
	return best
}
