package fm

import (
	"math/rand"

	"mlpart/internal/gainbucket"
)

// Workspace holds the per-run scratch memory of the refinement
// engines: activity flags, pin counters, gain arrays, the move log,
// the two gain-bucket structures of the FM/CLIP engines, and the
// heap/probability state of the PROP engines. Threading one Workspace
// through the Refine/Partition calls of a multilevel run makes
// refinement allocation-free in steady state: each hierarchy level
// reuses the previous level's (larger) buffers instead of
// reallocating them.
//
// Ownership rule: a Workspace belongs to exactly one goroutine and one
// pipeline attempt at a time. It must never be stored in a package
// level variable or shared across concurrent attempts; the multi-start
// supervisor creates one per attempt. The zero value is ready to use.
// Reuse never changes results: every buffer is either fully
// reinitialized per run or grown with make (which zero-fills), and the
// RNG consumption is untouched, so runs with and without a Workspace
// are bit-identical (pinned by the oracle differential tests).
type Workspace struct {
	// FM/CLIP engine state (refine.go).
	active    []bool
	pc        [2][]int32
	gain      []int32
	initKey   []int32
	locked    []bool
	moveCells []int32
	moveGains []int32
	buckets   [2]*gainbucket.Structure

	// Sub-round-synchronous engine state (subround.go): the frozen-key
	// selection batch, the affected-cell gather with the old bucket
	// keys, the stamp arrays deduplicating the gather, and the cells
	// pulled from the buckets as area-blocked within the current
	// sub-round.
	subSel      []int32
	affected    []int32
	affectedKey []int32
	cellStamp   []int32
	netStamp    []int32
	deferred    []int32

	// PROP engine state (prop.go).
	lc       [2][]int32
	gainF    []float64
	initKeyF []float64
	version  []int32
	pows     []float64
	heaps    [2]propHeap
}

// grab returns the workspace to use for one run: the caller's, or a
// throwaway one so the allocating path shares the same code.
func (c Config) grab() *Workspace {
	if c.WS != nil {
		return c.WS
	}
	return &Workspace{}
}

// bucket returns the side-s gain bucket sized for this run, reusing
// the stored structure's arrays via Reset when one exists.
func (w *Workspace) bucket(s, numCells, maxGain int, order gainbucket.Order, rng *rand.Rand) *gainbucket.Structure {
	if w.buckets[s] == nil {
		w.buckets[s] = gainbucket.New(numCells, maxGain, order, rng)
	} else {
		w.buckets[s].Reset(numCells, maxGain, order, rng)
	}
	return w.buckets[s]
}

// growBool returns a length-n bool slice reusing buf when possible.
// Contents are unspecified: callers reinitialize every entry they read
// (initPass rewrites locked and active in full before any use).
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// growInt32 returns a length-n int32 slice reusing buf when possible.
// Contents are unspecified.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growFloat64 returns a length-n float64 slice reusing buf when
// possible. Contents are unspecified.
func growFloat64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
