// Package netmodel expands netlist hypergraphs into weighted graphs
// for the analytic algorithms (quadratic placement, spectral
// bisection). A net with s pins becomes a clique with edge weight
// 1/(s−1) — the standard model whose Laplacian both GORDIAN [30] and
// spectral methods [18] operate on — while very large nets fall back
// to a chain model to keep the graph sparse.
package netmodel

import (
	"mlpart/internal/hypergraph"
)

// Graph is a sparse undirected weighted graph in CSR form over the
// cells of a hypergraph.
type Graph struct {
	start  []int32
	adj    []int32
	weight []float64
	deg    []float64 // weighted degree per cell
}

// Build expands h into a Graph. Nets with at most cliqueLimit pins
// use the clique model; larger nets use the chain model. A
// cliqueLimit < 2 defaults to 16.
func Build(h *hypergraph.Hypergraph, cliqueLimit int) *Graph {
	if cliqueLimit < 2 {
		cliqueLimit = 16
	}
	n := h.NumCells()
	count := make([]int32, n+1)
	forEachEdge(h, cliqueLimit, func(a, b int32, w float64) {
		count[a+1]++
		count[b+1]++
	})
	g := &Graph{start: make([]int32, n+1), deg: make([]float64, n)}
	for v := 0; v < n; v++ {
		g.start[v+1] = g.start[v] + count[v+1]
	}
	total := g.start[n]
	g.adj = make([]int32, total)
	g.weight = make([]float64, total)
	fill := make([]int32, n)
	copy(fill, g.start[:n])
	forEachEdge(h, cliqueLimit, func(a, b int32, w float64) {
		g.adj[fill[a]] = b
		g.weight[fill[a]] = w
		fill[a]++
		g.adj[fill[b]] = a
		g.weight[fill[b]] = w
		fill[b]++
		g.deg[a] += w
		g.deg[b] += w
	})
	return g
}

// forEachEdge enumerates the undirected edges of the net model.
func forEachEdge(h *hypergraph.Hypergraph, cliqueLimit int, f func(a, b int32, w float64)) {
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		s := len(pins)
		w := 1.0 / float64(s-1)
		if s <= cliqueLimit {
			for i := 0; i < s; i++ {
				for j := i + 1; j < s; j++ {
					f(pins[i], pins[j], w)
				}
			}
		} else {
			for i := 0; i+1 < s; i++ {
				f(pins[i], pins[i+1], w)
			}
		}
	}
}

// NumCells returns the number of vertices.
func (g *Graph) NumCells() int { return len(g.deg) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the weighted degree of cell v.
func (g *Graph) Degree(v int) float64 { return g.deg[v] }

// Neighbors calls f for every neighbor (u, w) of v.
func (g *Graph) Neighbors(v int, f func(u int32, w float64)) {
	for k := g.start[v]; k < g.start[v+1]; k++ {
		f(g.adj[k], g.weight[k])
	}
}

// MaxDegree returns the maximum weighted degree (an upper bound on
// half the Laplacian spectral radius, by Gershgorin).
func (g *Graph) MaxDegree() float64 {
	maxd := 0.0
	for _, d := range g.deg {
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// LaplacianMulAdd computes y = L·x where L = D − W is the graph
// Laplacian. x and y must have length NumCells.
func (g *Graph) LaplacianMulAdd(x, y []float64) {
	for v := 0; v < len(g.deg); v++ {
		sum := g.deg[v] * x[v]
		for k := g.start[v]; k < g.start[v+1]; k++ {
			sum -= g.weight[k] * x[g.adj[k]]
		}
		y[v] = sum
	}
}

// QuadraticCost returns x^T L x = Σ_{(u,v)∈E} w·(x_u − x_v)², the
// quadratic wirelength of a 1-D placement under the net model.
func (g *Graph) QuadraticCost(x []float64) float64 {
	var total float64
	for v := 0; v < len(g.deg); v++ {
		for k := g.start[v]; k < g.start[v+1]; k++ {
			u := g.adj[k]
			if int32(v) < u { // each undirected edge once
				d := x[v] - x[u]
				total += g.weight[k] * d * d
			}
		}
	}
	return total
}
