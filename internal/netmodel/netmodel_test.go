package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
)

func TestCliqueExpansion(t *testing.T) {
	h := hypergraph.NewBuilder(4).AddNet(0, 1, 2, 3).MustBuild()
	g := Build(h, 16)
	if g.NumEdges() != 6 {
		t.Errorf("edges = %d, want 6 (K4)", g.NumEdges())
	}
	// w = 1/3 per edge; degree = 3·(1/3) = 1.
	for v := 0; v < 4; v++ {
		if math.Abs(g.Degree(v)-1) > 1e-12 {
			t.Errorf("deg %d = %v", v, g.Degree(v))
		}
	}
}

func TestChainFallback(t *testing.T) {
	b := hypergraph.NewBuilder(30)
	pins := make([]int, 30)
	for i := range pins {
		pins[i] = i
	}
	b.AddNet(pins...)
	g := Build(b.MustBuild(), 10)
	if g.NumEdges() != 29 {
		t.Errorf("edges = %d, want 29", g.NumEdges())
	}
}

func TestBuildDefaultCliqueLimit(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddNet(0, 1, 2).MustBuild()
	g := Build(h, 0) // defaults to 16
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
}

func TestLaplacianProperties(t *testing.T) {
	// L·1 = 0 and x^T L x ≥ 0 for random x.
	rng := rand.New(rand.NewSource(1))
	b := hypergraph.NewBuilder(20)
	for e := 0; e < 40; e++ {
		b.AddNet(rng.Intn(20), rng.Intn(20), rng.Intn(20))
	}
	g := Build(b.MustBuild(), 16)
	ones := make([]float64, 20)
	y := make([]float64, 20)
	for i := range ones {
		ones[i] = 1
	}
	g.LaplacianMulAdd(ones, y)
	for v, yv := range y {
		if math.Abs(yv) > 1e-9 {
			t.Errorf("(L·1)[%d] = %v, want 0", v, yv)
		}
	}
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, 20)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if q := g.QuadraticCost(x); q < -1e-9 {
			t.Errorf("x^T L x = %v < 0", q)
		}
	}
}

func TestQuadraticCostMatchesLaplacian(t *testing.T) {
	// x^T (L x) computed via LaplacianMulAdd must equal QuadraticCost.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := hypergraph.NewBuilder(n)
		for e := 0; e < n*2; e++ {
			b.AddNet(rng.Intn(n), rng.Intn(n))
		}
		g := Build(b.MustBuild(), 16)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		y := make([]float64, n)
		g.LaplacianMulAdd(x, y)
		var xly float64
		for i := range x {
			xly += x[i] * y[i]
		}
		return math.Abs(xly-g.QuadraticCost(x)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxDegree(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddNet(0, 1).AddNet(0, 2).MustBuild()
	g := Build(h, 16)
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %v, want 2", g.MaxDegree())
	}
	if g.NumCells() != 3 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
}

func TestNeighbors(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddNet(0, 1).AddNet(0, 2).MustBuild()
	g := Build(h, 16)
	seen := map[int32]float64{}
	g.Neighbors(0, func(u int32, w float64) { seen[u] = w })
	if len(seen) != 2 || seen[1] != 1 || seen[2] != 1 {
		t.Errorf("neighbors of 0 = %v", seen)
	}
}
