// Package placement implements the algorithmic core of the GORDIAN
// placement tool [30][41] that §IV.D compares against: a quadratic
// wirelength placement (solved as a sparse linear system with I/O
// pads fixed on the chip boundary) whose induced one-dimensional
// orderings are sliced to produce a 4-way partitioning.
//
// GORDIAN itself is closed source; this package rebuilds exactly the
// piece Table IX measures — solve the quadratic program, split the
// horizontal ordering into left/right halves, re-solve/split
// vertically, and report the 4-way cut of the resulting quadrants.
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"mlpart/internal/hypergraph"
	"mlpart/internal/netmodel"
)

// Config parameterizes the quadratic placer.
type Config struct {
	// CliqueLimit: nets with at most this many pins use the clique
	// model with weight 1/(|e|−1) per pair; larger nets use a chain
	// model (consecutive pins with weight 1/(|e|−1)) to keep the
	// system sparse. Default 16.
	CliqueLimit int
	// CGTol is the relative residual tolerance of the conjugate
	// gradient solver. Default 1e-6.
	CGTol float64
	// CGMaxIter bounds CG iterations. Default 1000.
	CGMaxIter int
	// Anchor is a small regularization weight pulling every movable
	// cell toward the chip center; it keeps the system positive
	// definite when cells are disconnected from all pads. Default
	// 1e-4.
	Anchor float64
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.CliqueLimit == 0 {
		c.CliqueLimit = 16
	}
	if c.CliqueLimit < 2 {
		return c, fmt.Errorf("placement: clique limit %d < 2", c.CliqueLimit)
	}
	if c.CGTol == 0 {
		c.CGTol = 1e-6
	}
	if c.CGTol <= 0 || c.CGTol >= 1 {
		return c, fmt.Errorf("placement: CG tolerance %v outside (0,1)", c.CGTol)
	}
	if c.CGMaxIter == 0 {
		c.CGMaxIter = 1000
	}
	if c.CGMaxIter < 1 {
		return c, fmt.Errorf("placement: CGMaxIter %d < 1", c.CGMaxIter)
	}
	if c.Anchor == 0 {
		c.Anchor = 1e-4
	}
	if c.Anchor < 0 {
		return c, fmt.Errorf("placement: negative anchor weight")
	}
	return c, nil
}

// Result reports a quadrisection-by-placement run.
type Result struct {
	// X, Y are the solved coordinates of every cell in [0,1].
	X, Y []float64
	// CutNets is the number of nets spanning more than one quadrant.
	CutNets int
	// SumDegrees is Σ_e (span−1) over the quadrants.
	SumDegrees int
	// CGIterationsX/Y are the solver iteration counts.
	CGIterationsX, CGIterationsY int
}

// solve1D solves the quadratic placement along one axis with the
// given fixed positions (fixedPos[v] is used iff fixed[v]). Returns
// the coordinates of all cells and the CG iteration count.
func solve1D(h *hypergraph.Hypergraph, g *netmodel.Graph, fixed []bool, fixedPos []float64, cfg Config) ([]float64, int) {
	n := h.NumCells()
	// Index movable cells.
	idx := make([]int32, n)
	var movable []int32
	for v := 0; v < n; v++ {
		if fixed[v] {
			idx[v] = -1
		} else {
			idx[v] = int32(len(movable))
			movable = append(movable, int32(v))
		}
	}
	m := len(movable)
	pos := make([]float64, n)
	for v := 0; v < n; v++ {
		if fixed[v] {
			pos[v] = fixedPos[v]
		} else {
			pos[v] = 0.5
		}
	}
	if m == 0 {
		return pos, 0
	}
	// System: (L_mm + anchor·I) x = b,
	// b_i = Σ_{j fixed} w_ij·pos_j + anchor·0.5.
	b := make([]float64, m)
	diag := make([]float64, m)
	for mi, v := range movable {
		diag[mi] = g.Degree(int(v)) + cfg.Anchor
		b[mi] = cfg.Anchor * 0.5
		g.Neighbors(int(v), func(u int32, w float64) {
			if fixed[u] {
				b[mi] += w * fixedPos[u]
			}
		})
	}
	// matvec: y = A x over movable cells.
	matvec := func(x, y []float64) {
		for mi, v := range movable {
			sum := diag[mi] * x[mi]
			g.Neighbors(int(v), func(u int32, w float64) {
				if j := idx[u]; j >= 0 {
					sum -= w * x[j]
				}
			})
			y[mi] = sum
		}
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = 0.5
	}
	iters := cg(matvec, diag, b, x, cfg.CGTol, cfg.CGMaxIter)
	for mi, v := range movable {
		pos[v] = clamp01(x[mi])
	}
	return pos, iters
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// cg runs Jacobi-preconditioned conjugate gradients, solving A x = b
// in place; returns the iteration count.
func cg(matvec func(x, y []float64), diag, b, x []float64, tol float64, maxIter int) int {
	m := len(b)
	r := make([]float64, m)
	z := make([]float64, m)
	p := make([]float64, m)
	ap := make([]float64, m)
	matvec(x, r)
	var bnorm float64
	for i := range r {
		r[i] = b[i] - r[i]
		bnorm += b[i] * b[i]
	}
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0
	}
	var rz float64
	for i := range r {
		z[i] = r[i] / diag[i]
		rz += r[i] * z[i]
		p[i] = z[i]
	}
	tol2 := tol * tol * bnorm
	for it := 0; it < maxIter; it++ {
		var rr float64
		for i := range r {
			rr += r[i] * r[i]
		}
		if rr <= tol2 {
			return it
		}
		matvec(p, ap)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return it // safeguard: matrix not PD numerically
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		var rzNew float64
		for i := range r {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter
}

// splitByCoordinate orders cells by coordinate and returns a 0/1 flag
// per cell: 0 for the low half, 1 for the high half, split at the
// area median (GORDIAN's "single split that evenly divides the
// area").
func splitByCoordinate(h *hypergraph.Hypergraph, pos []float64) []int32 {
	n := h.NumCells()
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.SliceStable(order, func(i, j int) bool { return pos[order[i]] < pos[order[j]] })
	half := h.TotalArea() / 2
	flag := make([]int32, n)
	var cum int64
	for _, v := range order {
		if cum >= half {
			flag[v] = 1
		}
		cum += h.Area(int(v))
	}
	return flag
}

// Quadrisect runs the GORDIAN-style flow on h. pads flags the
// pre-placed I/O cells; if nil or fewer than 4 pads are flagged, a
// deterministic pseudo-random pad set of max(8, n/50) cells is
// chosen. Pad positions are spread evenly around the chip boundary
// in random order.
func Quadrisect(h *hypergraph.Hypergraph, pads []bool, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	n := h.NumCells()
	if n == 0 {
		return hypergraph.NewPartition(0, 4), Result{}, nil
	}
	fixed := make([]bool, n)
	numPads := 0
	if pads != nil {
		if len(pads) != n {
			return nil, Result{}, fmt.Errorf("placement: pads has %d entries, hypergraph has %d cells", len(pads), n)
		}
		copy(fixed, pads)
		for _, p := range fixed {
			if p {
				numPads++
			}
		}
	}
	if numPads < 4 {
		want := n / 50
		if want < 8 {
			want = 8
		}
		if want > n {
			want = n
		}
		perm := rng.Perm(n)
		for i := 0; numPads < want && i < n; i++ {
			if !fixed[perm[i]] {
				fixed[perm[i]] = true
				numPads++
			}
		}
	}
	// Place pads evenly on the boundary of the unit square, in a
	// random order.
	padX := make([]float64, n)
	padY := make([]float64, n)
	var padList []int
	for v := 0; v < n; v++ {
		if fixed[v] {
			padList = append(padList, v)
		}
	}
	rng.Shuffle(len(padList), func(i, j int) { padList[i], padList[j] = padList[j], padList[i] })
	for i, v := range padList {
		t := float64(i) / float64(len(padList)) * 4.0
		switch {
		case t < 1: // bottom edge
			padX[v], padY[v] = t, 0
		case t < 2: // right edge
			padX[v], padY[v] = 1, t-1
		case t < 3: // top edge
			padX[v], padY[v] = 3-t, 1
		default: // left edge
			padX[v], padY[v] = 0, 4-t
		}
	}

	g := netmodel.Build(h, cfg.CliqueLimit)
	res := Result{}
	res.X, res.CGIterationsX = solve1D(h, g, fixed, padX, cfg)
	res.Y, res.CGIterationsY = solve1D(h, g, fixed, padY, cfg)

	// Horizontal split, then global vertical split → quadrants.
	xf := splitByCoordinate(h, res.X)
	yf := splitByCoordinate(h, res.Y)
	p := hypergraph.NewPartition(n, 4)
	for v := 0; v < n; v++ {
		p.Part[v] = xf[v] + 2*yf[v]
	}
	res.CutNets = p.Cut(h)
	res.SumDegrees = p.SumOfDegrees(h)
	return p, res, nil
}
