package placement

import (
	"math"
	"math/rand"
	"testing"

	"mlpart/internal/hypergraph"
	"mlpart/internal/netmodel"
)

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

func TestCGChainInterpolates(t *testing.T) {
	// Path 0-1-2-3-4 with ends fixed at 0 and 1: the quadratic
	// optimum places interior cells at 0.25, 0.5, 0.75.
	h := hypergraph.NewBuilder(5).
		AddNet(0, 1).AddNet(1, 2).AddNet(2, 3).AddNet(3, 4).
		MustBuild()
	g := netmodel.Build(h, 16)
	fixed := []bool{true, false, false, false, true}
	fixedPos := []float64{0, 0, 0, 0, 1}
	cfg, _ := Config{Anchor: 1e-9}.Normalize()
	cfg.Anchor = 1e-9
	pos, iters := solve1D(h, g, fixed, fixedPos, cfg)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for v, w := range want {
		if math.Abs(pos[v]-w) > 1e-3 {
			t.Errorf("pos[%d] = %v, want %v (iters %d)", v, pos[v], w, iters)
		}
	}
}

func TestCGStarCenters(t *testing.T) {
	// Star: center 0 connected to 4 pads at corners of [0,1]; center
	// lands at the mean.
	h := hypergraph.NewBuilder(5).
		AddNet(0, 1).AddNet(0, 2).AddNet(0, 3).AddNet(0, 4).
		MustBuild()
	g := netmodel.Build(h, 16)
	fixed := []bool{false, true, true, true, true}
	xs := []float64{0, 0, 1, 0, 1}
	cfg, _ := Config{}.Normalize()
	cfg.Anchor = 1e-9
	pos, _ := solve1D(h, g, fixed, xs, cfg)
	if math.Abs(pos[0]-0.5) > 1e-3 {
		t.Errorf("center x = %v, want 0.5", pos[0])
	}
}

func TestCliqueModelWeights(t *testing.T) {
	// One 3-pin net → clique of 3 edges with w = 1/2; each cell has
	// weighted degree 1.
	h := hypergraph.NewBuilder(3).AddNet(0, 1, 2).MustBuild()
	g := netmodel.Build(h, 16)
	for v := 0; v < 3; v++ {
		if math.Abs(g.Degree(v)-1.0) > 1e-12 {
			t.Errorf("deg[%d] = %v, want 1.0", v, g.Degree(v))
		}
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
}

func TestChainModelForLargeNets(t *testing.T) {
	b := hypergraph.NewBuilder(20)
	pins := make([]int, 20)
	for i := range pins {
		pins[i] = i
	}
	b.AddNet(pins...)
	h := b.MustBuild()
	g := netmodel.Build(h, 16) // 20 > 16 → chain with 19 edges
	if g.NumEdges() != 19 {
		t.Errorf("edges = %d, want 19 (chain)", g.NumEdges())
	}
}

func TestQuadrisectBalancedAreas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomH(rng, 400, 800, 4)
	p, res, err := Quadrisect(h, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(400); err != nil {
		t.Fatal(err)
	}
	if res.CutNets != p.Cut(h) || res.SumDegrees != p.SumOfDegrees(h) {
		t.Error("metric mismatch")
	}
	// Each of the four quadrants holds roughly a quarter of the area
	// (median splits guarantee halves exactly; quadrant skew comes
	// only from the correlation of x and y splits).
	areas := p.BlockAreas(h)
	// The two x-halves are exact (up to one cell).
	left := areas[0] + areas[2]
	right := areas[1] + areas[3]
	if d := left - right; d < -20 || d > 20 {
		t.Errorf("x halves unbalanced: %d vs %d", left, right)
	}
	bottom := areas[0] + areas[1]
	top := areas[2] + areas[3]
	if d := bottom - top; d < -20 || d > 20 {
		t.Errorf("y halves unbalanced: %d vs %d", bottom, top)
	}
}

func TestQuadrisectSeparatesPlantedGeometry(t *testing.T) {
	// Four planted groups, each densely intra-connected, with pads
	// pre-assigned to the four corners: the placer must put each
	// group mostly in the quadrant of its pads, giving a far lower
	// cut than random quadrants would.
	rng := rand.New(rand.NewSource(2))
	const k = 50
	b := hypergraph.NewBuilder(4 * k)
	for g := 0; g < 4; g++ {
		base := g * k
		for i := 0; i < 4*k; i++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	// sparse inter-group nets
	for i := 0; i < 8; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
		b.AddNet(2*k+rng.Intn(k), 3*k+rng.Intn(k))
	}
	h := b.MustBuild()
	// Pads: cell g*k..g*k+2 of each group, all from that group.
	pads := make([]bool, 4*k)
	for g := 0; g < 4; g++ {
		for i := 0; i < 3; i++ {
			pads[g*k+i] = true
		}
	}
	p, res, err := Quadrisect(h, pads, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	// A random 4-way partition of this instance cuts the vast
	// majority of the ~800 intra-group nets; the placer should cut
	// far fewer than half.
	if res.CutNets > h.NumNets()/2 {
		t.Errorf("placement cut %d of %d nets; expected strong geometric separation",
			res.CutNets, h.NumNets())
	}
}

func TestQuadrisectDeterministicPerSeed(t *testing.T) {
	h := randomH(rand.New(rand.NewSource(3)), 200, 400, 4)
	p1, _, err := Quadrisect(h, nil, Config{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Quadrisect(h, nil, Config{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for v := range p1.Part {
		if p1.Part[v] != p2.Part[v] {
			t.Fatal("not deterministic")
		}
	}
}

func TestQuadrisectErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomH(rng, 10, 15, 3)
	if _, _, err := Quadrisect(h, make([]bool, 3), Config{}, rng); err == nil {
		t.Error("pad length mismatch must error")
	}
	for _, bad := range []Config{
		{CliqueLimit: 1}, {CGTol: 2}, {CGMaxIter: -1}, {Anchor: -1},
	} {
		if _, _, err := Quadrisect(h, nil, bad, rng); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
}

func TestQuadrisectEmptyHypergraph(t *testing.T) {
	h := hypergraph.NewBuilder(0).MustBuild()
	p, res, err := Quadrisect(h, nil, Config{}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != 0 || len(p.Part) != 0 {
		t.Error("empty hypergraph mishandled")
	}
}

func TestIsolatedCellsAnchored(t *testing.T) {
	// Cells with no nets must still get coordinates (anchor term) and
	// not break the solver.
	b := hypergraph.NewBuilder(50)
	b.AddNet(0, 1)
	h := b.MustBuild()
	rng := rand.New(rand.NewSource(6))
	_, res, err := Quadrisect(h, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range res.X {
		if math.IsNaN(x) || math.IsNaN(res.Y[v]) {
			t.Fatalf("cell %d has NaN coordinates", v)
		}
	}
}
