package audit

import (
	"strings"
	"testing"

	"mlpart/internal/hypergraph"
)

// testGraph: 6 cells, areas 1..6, nets {0,1,2} {2,3} {3,4,5} {0,5}.
func testGraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetArea(v, int64(v+1))
	}
	b.AddNet(0, 1, 2).AddNet(2, 3).AddNet(3, 4, 5).AddNet(0, 5)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCheckHypergraph(t *testing.T) {
	h := testGraph(t)
	if err := CheckHypergraph(h); err != nil {
		t.Fatal(err)
	}
	if err := CheckHypergraph(nil); err == nil {
		t.Error("nil hypergraph passed the audit")
	}
}

func TestCheckClustering(t *testing.T) {
	h := testGraph(t)
	// Pairs (0,1) (2,3) (4,5) → 3 clusters.
	c := &hypergraph.Clustering{CellToCluster: []int32{0, 0, 1, 1, 2, 2}, NumClusters: 3}
	coarse, err := hypergraph.Induce(h, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckClustering(h, c, coarse); err != nil {
		t.Fatal(err)
	}
	// A coarse hypergraph with the wrong cell count.
	if err := CheckClustering(h, c, h); err == nil {
		t.Error("cluster-count mismatch passed the audit")
	}
	// Break area conservation: swap in a coarse graph with unit areas.
	flat := hypergraph.NewBuilder(3).AddNet(0, 1).AddNet(1, 2).MustBuild()
	err = CheckClustering(h, c, flat)
	if err == nil || !strings.Contains(err.Error(), "area not conserved") {
		t.Errorf("area violation not caught: %v", err)
	}
	// Malformed clustering: cluster id out of range.
	bad := &hypergraph.Clustering{CellToCluster: []int32{0, 0, 1, 1, 2, 3}, NumClusters: 3}
	if err := CheckClustering(h, bad, nil); err == nil {
		t.Error("out-of-range cluster id passed the audit")
	}
}

func TestCheckPartitionFeasibility(t *testing.T) {
	h := testGraph(t)
	p := hypergraph.NewPartition(6, 2)
	// Blocks {0,1,4,5} area 12 vs {2,3} area 7; total 21.
	p.Part = []int32{0, 0, 1, 1, 0, 0}
	if err := CheckPartition(h, p, NoChecks()); err != nil {
		t.Fatal(err)
	}
	chk := NoChecks()
	chk.K = 2
	if err := CheckPartition(h, p, chk); err != nil {
		t.Fatal(err)
	}
	chk.K = 4
	if err := CheckPartition(h, p, chk); err == nil {
		t.Error("wrong K passed the audit")
	}
	// A bound tight enough to reject the 12/7 split.
	chk = NoChecks()
	bound := hypergraph.BalanceBound{Lo: 9, Hi: 12}
	chk.Bound = &bound
	if err := CheckPartition(h, p, chk); err == nil {
		t.Error("balance violation passed the audit")
	}
	bound = hypergraph.BalanceBound{Lo: 7, Hi: 14}
	if err := CheckPartition(h, p, chk); err != nil {
		t.Error(err)
	}
}

func TestCheckPartitionCutCrossCheck(t *testing.T) {
	h := testGraph(t)
	p := hypergraph.NewPartition(6, 2)
	p.Part = []int32{0, 0, 1, 1, 0, 0}
	// Cut nets: {0,1,2}, {3,4,5}, and {2,3} is internal to block 1,
	// {0,5} internal to block 0 → weighted cut 2.
	chk := NoChecks()
	chk.WeightedCut = p.WeightedCut(h)
	if err := CheckPartition(h, p, chk); err != nil {
		t.Fatal(err)
	}
	chk.WeightedCut++
	err := CheckPartition(h, p, chk)
	if err == nil || !strings.Contains(err.Error(), "from-scratch cut") {
		t.Errorf("stale incremental cut not caught: %v", err)
	}
	// Active cut with a net-size cutoff of 2: only {2,3} and {0,5}
	// qualify, both internal → 0.
	chk = NoChecks()
	chk.ActiveCut = 0
	chk.MaxNetSize = 2
	if err := CheckPartition(h, p, chk); err != nil {
		t.Fatal(err)
	}
	chk.ActiveCut = 1
	err = CheckPartition(h, p, chk)
	if err == nil || !strings.Contains(err.Error(), "active cut") {
		t.Errorf("stale active cut not caught: %v", err)
	}
	// No cutoff (MaxNetSize <= 0): active cut equals the full cut.
	chk = NoChecks()
	chk.ActiveCut = 2
	chk.MaxNetSize = 0
	if err := CheckPartition(h, p, chk); err != nil {
		t.Fatal(err)
	}
	// Sum of degrees: each cut net spans 2 blocks → Σ(span−1) = 2.
	chk = NoChecks()
	chk.SumDegrees = p.WeightedSumOfDegrees(h)
	if err := CheckPartition(h, p, chk); err != nil {
		t.Fatal(err)
	}
	chk.SumDegrees++
	if err := CheckPartition(h, p, chk); err == nil {
		t.Error("stale sum-of-degrees passed the audit")
	}
	// Malformed partition: block index out of range.
	q := hypergraph.NewPartition(6, 2)
	q.Part[5] = 7
	if err := CheckPartition(h, q, NoChecks()); err == nil {
		t.Error("out-of-range block passed the audit")
	}
}
