package audit

// The incremental-vs-recomputed-cut cross-check must also hold for
// k-way (quadrisection) solutions, where the refiner maintains
// CutNets and SumDegrees incrementally across multi-way moves — the
// bookkeeping the bipartition tests never exercise.

import (
	"math/rand"
	"strings"
	"testing"

	"mlpart/internal/hypergraph"
	"mlpart/internal/kway"
)

// quadGraph: 16 unit-area cells in four dense groups of four plus a
// few cross-group nets, so a quadrisection with one group per block
// is natural and the cut is small but non-zero.
func quadGraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(16)
	for g := 0; g < 4; g++ {
		base := 4 * g
		b.AddNet(base, base+1, base+2, base+3)
		b.AddNet(base, base+1).AddNet(base+2, base+3).AddNet(base+1, base+2)
	}
	b.AddNet(0, 4).AddNet(5, 9).AddNet(10, 14).AddNet(3, 15)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCheckPartitionKwayCutCrossCheck(t *testing.T) {
	h := quadGraph(t)
	cfg, err := kway.Config{K: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	p, res, err := kway.Partition(h, nil, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	// The refiner's incrementally maintained counters must agree with
	// the from-scratch recomputations. All nets here are within the
	// default MaxNetSize, so the active cut equals the full cut.
	chk := NoChecks()
	chk.K = 4
	bound := hypergraph.Balance(h, 4, cfg.Tolerance)
	chk.Bound = &bound
	chk.WeightedCut = res.CutNets
	chk.ActiveCut = res.CutNets
	chk.MaxNetSize = cfg.MaxNetSize
	chk.SumDegrees = res.SumDegrees
	if err := CheckPartition(h, p, chk); err != nil {
		t.Fatalf("refined 4-way solution failed the audit: %v", err)
	}

	// Stale counters must be caught against the same 4-way solution.
	stale := NoChecks()
	stale.WeightedCut = res.CutNets + 1
	err = CheckPartition(h, p, stale)
	if err == nil || !strings.Contains(err.Error(), "from-scratch cut") {
		t.Errorf("stale k-way weighted cut not caught: %v", err)
	}
	stale = NoChecks()
	stale.ActiveCut = res.CutNets + 1
	stale.MaxNetSize = cfg.MaxNetSize
	err = CheckPartition(h, p, stale)
	if err == nil || !strings.Contains(err.Error(), "active cut") {
		t.Errorf("stale k-way active cut not caught: %v", err)
	}
	stale = NoChecks()
	stale.SumDegrees = res.SumDegrees + 1
	err = CheckPartition(h, p, stale)
	if err == nil || !strings.Contains(err.Error(), "sum-of-degrees") {
		t.Errorf("stale k-way sum-of-degrees not caught: %v", err)
	}

	// Moving one cell invalidates every incremental counter; the
	// recomputation must notice all of them.
	moved := p.Clone()
	moved.Part[0] = (moved.Part[0] + 1) % 4
	drift := NoChecks()
	drift.WeightedCut = res.CutNets
	if err := CheckPartition(h, moved, drift); err == nil {
		t.Error("cut drift after a k-way move passed the audit")
	}
	drift = NoChecks()
	drift.SumDegrees = res.SumDegrees
	if err := CheckPartition(h, moved, drift); err == nil {
		t.Error("sum-of-degrees drift after a k-way move passed the audit")
	}

	// Wrong K must be rejected outright.
	wrongK := NoChecks()
	wrongK.K = 2
	if err := CheckPartition(h, p, wrongK); err == nil {
		t.Error("K mismatch passed the audit")
	}
}
