// Package audit provides from-scratch invariant checks for the
// multilevel pipeline: hypergraph CSR consistency, clustering
// well-formedness with area conservation across Induce, and partition
// feasibility with an incremental-vs-recomputed cut cross-check. The
// checks are opt-in (Options.Audit / -audit) because they are
// O(pins) per level transition; they are always on in the
// integration tests.
package audit

import (
	"fmt"

	"mlpart/internal/hypergraph"
)

// Skip is the sentinel for PartitionChecks fields that should not be
// verified.
const Skip = -1

// Error is the typed invariant-violation error every audit check
// returns, so callers (and the chaos suite) can distinguish a
// detected corruption from infrastructure failures with errors.As.
type Error struct {
	err error
}

func (e *Error) Error() string { return e.err.Error() }

// Unwrap exposes the underlying cause (e.g. a Validate error).
func (e *Error) Unwrap() error { return e.err }

// errf builds a typed *Error; %w wrapping works as with fmt.Errorf.
func errf(format string, args ...any) error {
	return &Error{err: fmt.Errorf(format, args...)}
}

// CheckHypergraph verifies CSR consistency in both directions, pin
// ranges and duplicates, area non-negativity, and the cached
// total/max area of h.
func CheckHypergraph(h *hypergraph.Hypergraph) error {
	if h == nil {
		return errf("audit: nil hypergraph")
	}
	if err := h.Validate(); err != nil {
		return errf("audit: %w", err)
	}
	return nil
}

// CheckClustering verifies that c is a well-formed clustering of fine
// (surjective onto contiguous cluster ids, every cluster non-empty)
// and that the coarse hypergraph induced from it conserves area:
// every cluster's area in coarse equals the sum of its members' areas
// in fine, and the totals agree.
func CheckClustering(fine *hypergraph.Hypergraph, c *hypergraph.Clustering, coarse *hypergraph.Hypergraph) error {
	if fine == nil || c == nil {
		return errf("audit: nil clustering inputs")
	}
	if err := c.Validate(fine.NumCells()); err != nil {
		return errf("audit: %w", err)
	}
	if coarse == nil {
		return nil
	}
	if coarse.NumCells() != c.NumClusters {
		return errf("audit: coarse hypergraph has %d cells, clustering has %d clusters",
			coarse.NumCells(), c.NumClusters)
	}
	sums := make([]int64, c.NumClusters)
	for v := 0; v < fine.NumCells(); v++ {
		sums[c.CellToCluster[v]] += fine.Area(v)
	}
	for k, want := range sums {
		if got := coarse.Area(k); got != want {
			return errf("audit: cluster %d area %d != member sum %d (area not conserved)", k, got, want)
		}
	}
	if fine.TotalArea() != coarse.TotalArea() {
		return errf("audit: total area %d != coarse total %d", fine.TotalArea(), coarse.TotalArea())
	}
	return nil
}

// PartitionChecks selects which partition invariants CheckPartition
// verifies beyond basic well-formedness. Set int fields to Skip (and
// pointer fields to nil) to skip a check.
type PartitionChecks struct {
	// K, when not Skip, is the expected number of blocks.
	K int
	// Bound, when non-nil, is the balance bound every block must meet.
	Bound *hypergraph.BalanceBound
	// WeightedCut, when not Skip, is cross-checked against a
	// from-scratch weighted cut over all nets.
	WeightedCut int
	// ActiveCut, when not Skip, is an incrementally maintained cut that
	// counts only nets with at most MaxNetSize pins; it is cross-checked
	// against a from-scratch recount with the same net filter.
	ActiveCut int
	// MaxNetSize is the refiner's net-size cutoff for ActiveCut
	// (nets larger than this are ignored); <= 0 means no cutoff.
	MaxNetSize int
	// SumDegrees, when not Skip, is cross-checked against the
	// from-scratch weighted sum of degrees (the K > 2 objective).
	SumDegrees int
}

// NoChecks returns a PartitionChecks with every optional check off.
func NoChecks() PartitionChecks {
	return PartitionChecks{K: Skip, WeightedCut: Skip, ActiveCut: Skip, MaxNetSize: Skip, SumDegrees: Skip}
}

// CheckPartition verifies that p is a well-formed partition of h and
// then applies the selected checks: expected K, balance bound, and
// the incremental-vs-from-scratch cut cross-checks that catch gain
// bucket and delta-cut bookkeeping bugs.
func CheckPartition(h *hypergraph.Hypergraph, p *hypergraph.Partition, chk PartitionChecks) error {
	if h == nil || p == nil {
		return errf("audit: nil partition inputs")
	}
	if err := p.Validate(h.NumCells()); err != nil {
		return errf("audit: %w", err)
	}
	if chk.K != Skip && p.K != chk.K {
		return errf("audit: partition has K=%d, expected %d", p.K, chk.K)
	}
	if chk.Bound != nil {
		for b, a := range p.BlockAreas(h) {
			if a < chk.Bound.Lo || a > chk.Bound.Hi {
				return errf("audit: block %d area %d outside balance bound [%d,%d]",
					b, a, chk.Bound.Lo, chk.Bound.Hi)
			}
		}
	}
	if chk.WeightedCut != Skip {
		if got := p.WeightedCut(h); got != chk.WeightedCut {
			return errf("audit: reported cut %d != from-scratch cut %d", chk.WeightedCut, got)
		}
	}
	if chk.ActiveCut != Skip {
		if got := activeCut(h, p, chk.MaxNetSize); got != chk.ActiveCut {
			return errf("audit: incremental cut %d != from-scratch active cut %d (net-size cutoff %d)",
				chk.ActiveCut, got, chk.MaxNetSize)
		}
	}
	if chk.SumDegrees != Skip {
		if got := p.WeightedSumOfDegrees(h); got != chk.SumDegrees {
			return errf("audit: reported sum-of-degrees %d != from-scratch %d", chk.SumDegrees, got)
		}
	}
	return nil
}

// activeCut recomputes the weighted cut counting only nets with at
// most maxNetSize pins (<= 0 means all nets), matching the refiners'
// incremental counter semantics.
func activeCut(h *hypergraph.Hypergraph, p *hypergraph.Partition, maxNetSize int) int {
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		if maxNetSize > 0 && h.NetSize(e) > maxNetSize {
			continue
		}
		pins := h.Pins(e)
		first := p.Part[pins[0]]
		for _, v := range pins[1:] {
			if p.Part[v] != first {
				cut += int(h.NetWeight(e))
				break
			}
		}
	}
	return cut
}
