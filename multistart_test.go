package mlpart

// Tests for the fault-isolated parallel multi-start supervisor: the
// parallelism-independence determinism contract, the per-start
// outcome taxonomy, and the regression for the old sequential loop
// that discarded remaining starts after one recovered panic.

import (
	"context"
	"testing"
	"time"

	"mlpart/internal/faultinject"
)

// TestParallelMultiStartDeterminism pins the supervisor's central
// guarantee: the result is bit-identical run-to-run and across every
// Parallelism value, for both entry points.
func TestParallelMultiStartDeterminism(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "pdet", Cells: 400, Nets: 450, Pins: 1450, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	for _, k := range []int{2, 4} {
		run := func(par int) (*Partition, Info) {
			opt := Options{Seed: 65, Starts: 8, Parallelism: par, Audit: true}
			var p *Partition
			var info Info
			var rerr error
			if k == 2 {
				p, info, rerr = Bipartition(h, opt)
			} else {
				p, info, rerr = Quadrisect(h, opt)
			}
			if rerr != nil {
				t.Fatalf("k=%d parallel=%d: %v", k, par, rerr)
			}
			if p == nil {
				t.Fatalf("k=%d parallel=%d: nil partition", k, par)
			}
			return p, info
		}
		ref, refInfo := run(1)
		for _, par := range []int{4, 8} {
			p, info := run(par)
			if info.Cut != refInfo.Cut || info.SumDegrees != refInfo.SumDegrees ||
				info.BestStart != refInfo.BestStart || info.Levels != refInfo.Levels {
				t.Fatalf("k=%d parallel=%d: info {cut %d sod %d best %d levels %d} != sequential {cut %d sod %d best %d levels %d}",
					k, par, info.Cut, info.SumDegrees, info.BestStart, info.Levels,
					refInfo.Cut, refInfo.SumDegrees, refInfo.BestStart, refInfo.Levels)
			}
			for v := range ref.Part {
				if p.Part[v] != ref.Part[v] {
					t.Fatalf("k=%d parallel=%d: partition diverges at cell %d", k, par, v)
				}
			}
			for s := range refInfo.StartReports {
				if info.StartReports[s].Cost != refInfo.StartReports[s].Cost ||
					info.StartReports[s].Outcome != refInfo.StartReports[s].Outcome {
					t.Fatalf("k=%d parallel=%d: start %d report diverges", k, par, s)
				}
			}
		}
	}
}

// TestRecoveredStartKeepsRemaining is the regression for the old
// multi-start loop, which broke out after one recovered panic and
// discarded every remaining start. A panic confined to start 0 must
// leave the other starts running cleanly and the overall error nil.
func TestRecoveredStartKeepsRemaining(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "rec0", Cells: 300, Nets: 340, Pins: 1100, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Seed:   66,
		Starts: 3,
		Audit:  true,
		Inject: &FaultPlan{
			Entries: []FaultEntry{faultinject.OnStart(faultinject.SiteFMPass, FaultPanic, 1, 0)},
		},
	}
	p, info, err := Bipartition(c.H, opt)
	if err != nil {
		t.Fatalf("clean starts remained, want nil error, got %v", err)
	}
	if p == nil {
		t.Fatal("nil partition")
	}
	if got := info.StartReports[0].Outcome; got != StartRecovered {
		t.Fatalf("start 0 outcome %v, want %v", got, StartRecovered)
	}
	for s := 1; s < opt.Starts; s++ {
		if got := info.StartReports[s].Outcome; got != StartOK {
			t.Fatalf("start %d outcome %v, want %v (remaining starts must run)", s, got, StartOK)
		}
	}
	if info.StartReports[0].Err == nil {
		t.Error("recovered start must carry its panic error in the report")
	}
}

// TestAttemptTimeoutOutcome pins the per-start deadline path: an
// immediately-expiring AttemptTimeout winds each start down
// cooperatively, keeps its feasible best-so-far solution, and is
// reported as StartTimedOut — not as an error, and not as the
// caller's Interrupted.
func TestAttemptTimeoutOutcome(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "tmo", Cells: 300, Nets: 340, Pins: 1100, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	opt := Options{Seed: 67, Starts: 2, AttemptTimeout: time.Nanosecond, Audit: true}
	p, info, err := Bipartition(h, opt)
	if err != nil {
		t.Fatalf("timeout is not an error: %v", err)
	}
	if p == nil {
		t.Fatal("an expired attempt must still keep its degraded solution")
	}
	if verr := p.Validate(h.NumCells()); verr != nil {
		t.Fatal(verr)
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Fatal("unbalanced partition")
	}
	if info.Interrupted {
		t.Error("per-attempt deadlines must not set Info.Interrupted")
	}
	for _, r := range info.StartReports {
		if r.Outcome != StartTimedOut {
			t.Errorf("start %d outcome %v, want %v", r.Start, r.Outcome, StartTimedOut)
		}
	}
}

// TestOuterCancelSkipsLaterStarts pins that a done caller context
// marks unstarted runs StartCancelled while start 0 still produces a
// feasible solution, and Info.Interrupted reflects the caller's
// cancellation.
func TestOuterCancelSkipsLaterStarts(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "oc", Cells: 300, Nets: 340, Pins: 1100, Seed: 58})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Seed: 68, Starts: 4, Parallelism: 1, Audit: true}
	p, info, err := BipartitionCtx(ctx, c.H, opt)
	if err != nil {
		t.Fatalf("cancellation is not an error: %v", err)
	}
	if p == nil {
		t.Fatal("start 0 must still produce a feasible solution under a done ctx")
	}
	if !info.Interrupted {
		t.Error("caller cancellation must set Info.Interrupted")
	}
	if got := info.StartReports[0].Outcome; got == StartCancelled {
		t.Errorf("start 0 outcome %v; it must run even under a done ctx", got)
	}
	for s := 1; s < opt.Starts; s++ {
		if got := info.StartReports[s].Outcome; got != StartCancelled {
			t.Errorf("start %d outcome %v, want %v", s, got, StartCancelled)
		}
	}
}

// TestRetriedOutcome drives the retry-with-reseed path: a
// probabilistic panic that fires on the first attempt but not on the
// reseeded retry yields outcome StartRetried with a nil top-level
// error. The plan seed is scanned until the pattern occurs; the scan
// itself is deterministic.
func TestRetriedOutcome(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "rty", Cells: 200, Nets: 230, Pins: 740, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	for planSeed := int64(0); planSeed < 200; planSeed++ {
		opt := Options{
			Seed:   69,
			Starts: 1,
			Inject: &FaultPlan{
				Seed: planSeed,
				Entries: []FaultEntry{{
					Site:  faultinject.SiteCoreProject,
					Kind:  FaultPanic,
					Prob:  0.15,
					Start: FaultAnyStart,
				}},
			},
		}
		p, info, err := Bipartition(h, opt)
		if len(info.StartReports) == 1 && info.StartReports[0].Outcome == StartRetried {
			if err != nil {
				t.Fatalf("retried start succeeded, want nil error, got %v", err)
			}
			if p == nil {
				t.Fatal("nil partition from a retried-then-clean start")
			}
			if info.StartReports[0].Attempts != 2 {
				t.Fatalf("attempts = %d, want 2", info.StartReports[0].Attempts)
			}
			return
		}
	}
	t.Fatal("no plan seed in [0,200) produced a fail-then-succeed retry")
}

// TestFaultSpecRoundTrip pins the CLI spec syntax end to end through
// the public wrapper.
func TestFaultSpecRoundTrip(t *testing.T) {
	plan, err := ParseFaultSpec([]string{"fm.pass:panic:2", "core.project:delay:p0.25:1"}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) != 2 || plan.Seed != 9 {
		t.Fatalf("bad plan: %+v", plan)
	}
	e := plan.Entries[0]
	if e.Site != faultinject.SiteFMPass || e.Kind != FaultPanic || e.OnHit != 2 || e.Start != FaultAnyStart {
		t.Fatalf("bad entry 0: %+v", e)
	}
	e = plan.Entries[1]
	if e.Site != faultinject.SiteCoreProject || e.Kind != FaultDelay || e.Prob != 0.25 || e.Start != 1 {
		t.Fatalf("bad entry 1: %+v", e)
	}
	if _, err := ParseFaultSpec([]string{"made.up:panic:1"}, 0); err == nil {
		t.Fatal("unknown site must be rejected")
	}
	if p, err := ParseFaultSpec(nil, 0); p != nil || err != nil {
		t.Fatalf("empty specs: got %v, %v", p, err)
	}
}
