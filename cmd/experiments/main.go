// Command experiments regenerates the tables and figures of the
// paper's evaluation section (§IV) on the synthetic benchmark suite.
//
// Usage:
//
//	experiments -list
//	experiments [-table table4] [-scale tiny|small|medium|full]
//	            [-runs N] [-seed S] [-workers W]
//	            [-circuits balu,bm1] [-maxcells N]
//
// Without -table, every registered experiment runs in order. At
// -scale full with -runs 100 this reproduces the paper's exact
// protocol (hours of CPU; golem3 included). The default (tiny, 5
// runs) completes in seconds and shows the same qualitative shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mlpart/internal/expt"
	"mlpart/internal/netgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table    = flag.String("table", "", "experiment id (default: run all); see -list")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		scale    = flag.String("scale", "tiny", "suite scale: tiny, small, medium, full")
		runs     = flag.Int("runs", 0, "runs per algorithm per circuit (default by scale; paper uses 100)")
		seed     = flag.Int64("seed", 1997, "base random seed")
		workers  = flag.Int("workers", 0, "parallel workers (default GOMAXPROCS)")
		circuits = flag.String("circuits", "", "comma-separated circuit names (default all in scale)")
		maxCells = flag.Int("maxcells", 0, "skip circuits with more cells (0 = no limit)")
		format   = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Paper)
		}
		return nil
	}

	opts := expt.Options{
		Scale:    netgen.SuiteScale(*scale),
		Runs:     *runs,
		Seed:     *seed,
		Workers:  *workers,
		MaxCells: *maxCells,
	}
	if *circuits != "" {
		for _, n := range strings.Split(*circuits, ",") {
			opts.Circuits = append(opts.Circuits, strings.TrimSpace(n))
		}
	}

	var selected []expt.Experiment
	if *table == "" {
		selected = expt.Experiments()
	} else {
		e, ok := expt.Lookup(*table)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *table)
		}
		selected = []expt.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		t, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "text":
			t.Format(os.Stdout)
			fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		case "csv":
			if err := t.FormatCSV(os.Stdout); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (want text or csv)", *format)
		}
	}
	return nil
}
