// mllint is the project's determinism & safety linter: a
// from-scratch static-analysis pass (stdlib go/parser + go/types
// only) enforcing the contracts every experiment table rests on.
//
// Usage:
//
//	mllint [-list] [packages]
//
// Packages default to ./... relative to the enclosing module.
// Diagnostics print as file:line:col: check: message (fix: hint);
// the exit status is 1 when any diagnostic fires, 2 on load errors.
// Suppress a finding with //mllint:ignore <check> <reason> on the
// offending line or the line above it — the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mlpart/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mllint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range analysis.AllChecks() {
			fmt.Printf("%-18s %s\n", c.Name(), c.Doc())
		}
		return
	}

	moduleDir, err := findModuleDir()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mllint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(moduleDir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mllint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		// Print module-relative paths so diagnostics are stable
		// across checkouts.
		if rel, rerr := filepath.Rel(moduleDir, d.Pos.Filename); rerr == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mllint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleDir walks up from the working directory to the nearest
// go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
