// mllint is the project's determinism & safety linter: a
// from-scratch static-analysis pass (stdlib go/parser + go/types
// only) enforcing the contracts every experiment table rests on.
//
// Usage:
//
//	mllint [-list] [-json] [-checks a,b] [packages]
//
// Packages default to ./... relative to the enclosing module.
// Diagnostics print as file:line:col: check: message (fix: hint);
// the exit status is 1 when any unsuppressed diagnostic fires, 2 on
// load errors. -json emits every diagnostic — suppressed ones
// included and marked — as a JSON array (schema mllint-diag/1), for
// CI artifacts and suppression audits. -checks runs only the named
// subset; the per-package scope rules still apply. Suppress a
// finding with //mllint:ignore <check> <reason> on the offending
// line, the line above it, or above the statement it belongs to —
// the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mlpart/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is one element of the -json array. The schema field names
// the wire format so downstream tooling can reject what it does not
// understand.
type jsonDiag struct {
	Schema     string `json:"schema"`
	Pos        string `json:"pos"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Hint       string `json:"hint,omitempty"`
	Suppressed bool   `json:"suppressed"`
}

const diagSchema = "mllint-diag/1"

// run is main with the process edges injected, so the CLI is testable
// end to end in-process. It returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the checks and exit")
	jsonOut := fs.Bool("json", false, "emit all diagnostics (suppressed included, marked) as a JSON array, schema "+diagSchema)
	subset := fs.String("checks", "", "comma-separated subset of checks to run (scope rules still apply)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mllint [-list] [-json] [-checks a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range analysis.AllChecks() {
			fmt.Fprintf(stdout, "%-18s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	var only []string
	if *subset != "" {
		known := make(map[string]bool)
		for _, c := range analysis.AllChecks() {
			known[c.Name()] = true
		}
		for _, name := range strings.Split(*subset, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				fmt.Fprintf(stderr, "mllint: unknown check %q (see -list)\n", name)
				return 2
			}
			only = append(only, name)
		}
	}

	moduleDir, err := findModuleDir()
	if err != nil {
		fmt.Fprintln(stderr, "mllint:", err)
		return 2
	}
	diags, err := analysis.RunFiltered(moduleDir, fs.Args(), only)
	if err != nil {
		fmt.Fprintln(stderr, "mllint:", err)
		return 2
	}
	// Print module-relative paths so diagnostics are stable across
	// checkouts.
	for i := range diags {
		if rel, rerr := filepath.Rel(moduleDir, diags[i].Pos.Filename); rerr == nil {
			diags[i].Pos.Filename = rel
		}
	}
	active := analysis.Active(diags)

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Schema:     diagSchema,
				Pos:        fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Check:      d.Check,
				Message:    d.Message,
				Hint:       d.Hint,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mllint:", err)
			return 2
		}
	} else {
		for _, d := range active {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "mllint: %d finding(s)\n", len(active))
		return 1
	}
	return 0
}

// findModuleDir walks up from the working directory to the nearest
// go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
