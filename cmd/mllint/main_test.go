package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestListFlag pins -list to the full registry: every check name
// appears once with its doc line.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("mllint -list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{
		"nondet-rand", "nondet-maporder", "float-eq", "unchecked-narrow",
		"ctx-thread", "faultsite", "telemetry-thread", "workspace-retain",
		"goroutine-capture", "lock-balance", "waitgroup-discipline",
		"chan-close", "par-purity",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output is missing check %q", name)
		}
	}
}

// TestTextModeCleanTree is the default CLI path end to end: a clean
// package produces no stdout at all and exit 0.
func TestTextModeCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./internal/hypergraph"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("text mode over a clean package must print nothing, got: %s", stdout.String())
	}
}

// TestJSONMode runs -json over internal/core, which carries
// deliberate par-purity suppressions (the telemetry wall-clock reads
// in the supervisor): the array must parse, every element must carry
// the schema tag, the suppressed findings must be present and marked,
// and the exit status must still be 0 because nothing unsuppressed
// fired.
func TestJSONMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./internal/core"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	suppressed := 0
	for _, d := range diags {
		if d.Schema != diagSchema {
			t.Errorf("element schema = %q, want %q", d.Schema, diagSchema)
		}
		if d.Pos == "" || d.Check == "" || d.Message == "" {
			t.Errorf("element missing required fields: %+v", d)
		}
		if !d.Suppressed {
			t.Errorf("unsuppressed finding in a clean tree: %+v", d)
		} else {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected the supervisor's suppressed par-purity findings to appear in -json output")
	}
}

// TestJSONModeEmpty pins the empty result to a literal JSON array,
// not null: consumers get a list either way.
func TestJSONModeEmpty(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-checks", "chan-close", "./internal/hypergraph"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("empty -json output = %q, want []", got)
	}
}

// TestChecksSubset exercises -checks: a valid subset runs (exit 0 on
// a clean package) and an unknown name is a usage error, exit 2.
func TestChecksSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "float-eq,lock-balance", "./internal/hypergraph"}, &stdout, &stderr); code != 0 {
		t.Fatalf("valid -checks subset exited %d, stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-checks", "no-such-check", "./internal/hypergraph"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check name exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown check") {
		t.Errorf("stderr should name the unknown check, got: %s", stderr.String())
	}
}
