// Command benchrun is the benchmark/regression harness: it runs a
// fixed set of netgen instances at pinned seeds through the public
// entry points, collects the best cut, the per-stage wall-clock
// profile (from the telemetry layer), and steady-state allocations
// per run, and emits a BENCH_<date>.json report (schema
// mlpart-bench/1). Against the checked-in bench_baseline.json it
// enforces the regression gate:
//
//   - cut and level counts must match the baseline exactly — the
//     pipeline is deterministic, so any drift is a real behavior
//     change, not noise;
//   - allocations per op must stay within -tolerance (default +25%)
//     of the baseline — the alloc-free-hot-paths guard;
//   - wall-clock timings are recorded but never gated — they are
//     machine-dependent.
//
// Usage:
//
//	benchrun [-iters n] [-tolerance f] [-baseline path] [-out path]
//	benchrun -update        # rewrite bench_baseline.json too
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mlpart"
)

const benchSchema = "mlpart-bench/1"

// stageNS is the per-stage wall-clock profile summed over all starts,
// in nanoseconds. Informational only: never part of the gate.
type stageNS struct {
	Coarsen   int64 `json:"coarsen_ns"`
	Refine    int64 `json:"refine_ns"`
	Project   int64 `json:"project_ns"`
	Rebalance int64 `json:"rebalance_ns"`
	Total     int64 `json:"total_ns"`
}

type benchEntry struct {
	Instance  string `json:"instance"`
	Algorithm string `json:"algorithm"`
	// IntraParallelism is the worker-pool width the row ran with
	// (0 = the serial legacy pipeline). Part of the row identity:
	// paired rows measure the same case serial and parallel.
	IntraParallelism int     `json:"intra_parallelism"`
	Cut              int     `json:"cut"`
	Levels           int     `json:"levels"`
	AllocsPerOp      uint64  `json:"allocs_per_op"`
	BytesPerOp       uint64  `json:"bytes_per_op"`
	StageNS          stageNS `json:"stage_ns"`
}

type benchFile struct {
	Schema  string       `json:"schema"`
	Date    string       `json:"date"`
	GoVers  string       `json:"go_version"`
	Entries []benchEntry `json:"entries"`
}

// benchCase is one pinned (instance, algorithm, intra-parallelism)
// triple.
type benchCase struct {
	spec      mlpart.CircuitSpec
	algorithm string
	intra     int
}

func benchCases() []benchCase {
	a := mlpart.CircuitSpec{Name: "bench-a", Cells: 1000, Nets: 1100, Pins: 3600, Seed: 201}
	b := mlpart.CircuitSpec{Name: "bench-b", Cells: 2000, Nets: 2100, Pins: 7000, Seed: 202}
	c := mlpart.CircuitSpec{Name: "bench-c", Cells: 3000, Nets: 3200, Pins: 10500, Seed: 203}
	// bench-m is the medium instance the intra-parallel refinement is
	// sized for: large enough that the sub-round engine's amortized
	// selection and parallel gain recomputation beat the serial
	// engine's per-move scan, small enough for the smoke gate.
	m := mlpart.CircuitSpec{Name: "bench-m", Cells: 16000, Nets: 17000, Pins: 56000, Seed: 204}
	return []benchCase{
		{spec: a, algorithm: "bipartition"},
		{spec: b, algorithm: "bipartition"},
		{spec: c, algorithm: "bipartition"},
		{spec: a, algorithm: "quadrisect"},
		{spec: b, algorithm: "quadrisect"},
		// Paired serial/parallel rows: identical case except for the
		// worker pool, so the report carries the intra-par refinement
		// speedup (printed after the table) run over run.
		{spec: b, algorithm: "bipartition", intra: 4},
		{spec: m, algorithm: "bipartition"},
		{spec: m, algorithm: "bipartition", intra: 4},
	}
}

// runOnce executes the case's algorithm with an armed telemetry
// collector and returns the cut, level count, and stage profile.
func runOnce(bc benchCase, h *mlpart.Hypergraph, tel *mlpart.Telemetry) (int, int, error) {
	opt := mlpart.Options{Seed: 7, Starts: 2, Parallelism: 1, IntraParallelism: bc.intra, Telemetry: tel}
	var info mlpart.Info
	var err error
	switch bc.algorithm {
	case "bipartition":
		_, info, err = mlpart.Bipartition(h, opt)
	case "quadrisect":
		_, info, err = mlpart.Quadrisect(h, opt)
	default:
		return 0, 0, fmt.Errorf("unknown algorithm %q", bc.algorithm)
	}
	if err != nil {
		return 0, 0, err
	}
	return info.Cut, info.Levels, nil
}

// measure runs one case: a telemetric run for cut/levels/stage
// profile, then iters untimed runs bracketed by MemStats reads for
// steady-state allocations per op (telemetry stays disabled there so
// the collector's own record appends don't pollute the hot-path
// count).
func measure(bc benchCase, iters int) (benchEntry, error) {
	circ, err := mlpart.GenerateCircuit(bc.spec)
	if err != nil {
		return benchEntry{}, err
	}
	h := circ.H

	tel := mlpart.NewTelemetry()
	cut, levels, err := runOnce(bc, h, tel)
	if err != nil {
		return benchEntry{}, err
	}
	var prof stageNS
	for _, s := range tel.Report().PerStart {
		prof.Coarsen += s.Timings.CoarsenNS
		prof.Refine += s.Timings.RefineNS
		prof.Project += s.Timings.ProjectNS
		prof.Rebalance += s.Timings.RebalanceNS
		prof.Total += s.Timings.TotalNS
	}

	// Warm run, then measure. Parallelism is 1 and nothing else runs,
	// so the Mallocs delta is attributable to the pipeline.
	if _, _, err := runOnce(bc, h, nil); err != nil {
		return benchEntry{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, _, err := runOnce(bc, h, nil); err != nil {
			return benchEntry{}, err
		}
	}
	runtime.ReadMemStats(&after)

	return benchEntry{
		Instance:         bc.spec.Name,
		Algorithm:        bc.algorithm,
		IntraParallelism: bc.intra,
		Cut:              cut,
		Levels:           levels,
		AllocsPerOp:      (after.Mallocs - before.Mallocs) / uint64(iters),
		BytesPerOp:       (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
		StageNS:          prof,
	}, nil
}

// gate compares the fresh report against the baseline and returns the
// list of violations.
func gate(got, base *benchFile, tolerance float64) []string {
	var bad []string
	if base.Schema != benchSchema {
		return []string{fmt.Sprintf("baseline schema %q, want %q (regenerate with -update)", base.Schema, benchSchema)}
	}
	if len(base.Entries) != len(got.Entries) {
		return []string{fmt.Sprintf("baseline has %d entries, run produced %d (regenerate with -update)", len(base.Entries), len(got.Entries))}
	}
	for i, b := range base.Entries {
		g := got.Entries[i]
		id := fmt.Sprintf("%s/%s/intra%d", g.Instance, g.Algorithm, g.IntraParallelism)
		if g.Instance != b.Instance || g.Algorithm != b.Algorithm || g.IntraParallelism != b.IntraParallelism {
			bad = append(bad, fmt.Sprintf("entry %d: case %s, baseline %s/%s/intra%d",
				i, id, b.Instance, b.Algorithm, b.IntraParallelism))
			continue
		}
		if g.Cut != b.Cut {
			bad = append(bad, fmt.Sprintf("%s: cut %d, baseline %d (determinism regression)", id, g.Cut, b.Cut))
		}
		if g.Levels != b.Levels {
			bad = append(bad, fmt.Sprintf("%s: %d levels, baseline %d", id, g.Levels, b.Levels))
		}
		// Small fixed slack absorbs runtime accounting jitter on tiny
		// counts; the multiplicative tolerance is the real gate.
		limit := uint64(float64(b.AllocsPerOp)*(1+tolerance)) + 16
		if g.AllocsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op, baseline %d (limit %d at tolerance %.0f%%)",
				id, g.AllocsPerOp, b.AllocsPerOp, limit, tolerance*100))
		}
	}
	return bad
}

func run() error {
	iters := flag.Int("iters", 5, "measured runs per case for the allocation count")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional allocs/op growth over the baseline")
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in baseline to gate against")
	out := flag.String("out", "", "report path (default BENCH_<date>.json)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	report := benchFile{
		Schema: benchSchema,
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoVers: runtime.Version(),
	}
	for _, bc := range benchCases() {
		e, err := measure(bc, *iters)
		if err != nil {
			return fmt.Errorf("%s/%s/intra%d: %w", bc.spec.Name, bc.algorithm, bc.intra, err)
		}
		fmt.Printf("%-8s %-12s intra=%-2d cut=%-5d levels=%-3d allocs/op=%-7d B/op=%-9d coarsen=%.1fms refine=%.1fms project=%.2fms\n",
			e.Instance, e.Algorithm, e.IntraParallelism, e.Cut, e.Levels, e.AllocsPerOp, e.BytesPerOp,
			float64(e.StageNS.Coarsen)/1e6, float64(e.StageNS.Refine)/1e6, float64(e.StageNS.Project)/1e6)
		report.Entries = append(report.Entries, e)
	}
	// Surface the refinement speedup of every paired serial/parallel
	// row: same instance and algorithm, serial (intra 0) vs pooled.
	for _, s := range report.Entries {
		if s.IntraParallelism != 0 {
			continue
		}
		for _, p := range report.Entries {
			if p.Instance == s.Instance && p.Algorithm == s.Algorithm && p.IntraParallelism > 0 && p.StageNS.Refine > 0 {
				fmt.Printf("%s/%s: refine %.1fms serial -> %.1fms at intra-par %d (%.2fx)\n",
					s.Instance, s.Algorithm,
					float64(s.StageNS.Refine)/1e6, float64(p.StageNS.Refine)/1e6,
					p.IntraParallelism, float64(s.StageNS.Refine)/float64(p.StageNS.Refine))
			}
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + report.Date + ".json"
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	if *update {
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("rewrote baseline %s\n", *baselinePath)
		return nil
	}

	baseData, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("missing baseline (bootstrap with -update): %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}
	if bad := gate(&report, &base, *tolerance); len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", m)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(bad), *baselinePath)
	}
	fmt.Printf("gate passed against %s (%d cases, tolerance %.0f%%)\n", *baselinePath, len(report.Entries), *tolerance*100)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}
