// Command benchgen writes the synthetic Table-I benchmark suite (or
// a scaled variant) to disk as hMETIS .hgr files, one per circuit,
// plus a <name>.pads file listing the designated I/O pad cells.
//
// Usage:
//
//	benchgen [-scale tiny|small|medium|full] [-dir .] [-only name,...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mlpart/internal/hypergraph"
	"mlpart/internal/netgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale  = flag.String("scale", "tiny", "suite scale: tiny, small, medium, full")
		dir    = flag.String("dir", ".", "output directory")
		only   = flag.String("only", "", "comma-separated circuit names to generate")
		format = flag.String("format", "hgr", "netlist format: hgr or netd")
	)
	flag.Parse()
	specs := netgen.SuiteSpecs(netgen.SuiteScale(*scale))
	if len(specs) == 0 {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, s := range specs {
		if len(want) > 0 && !want[s.Name] {
			continue
		}
		c, err := netgen.Generate(s)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		var hgrPath string
		switch *format {
		case "hgr":
			hgrPath = filepath.Join(*dir, s.Name+".hgr")
			f, err := os.Create(hgrPath)
			if err != nil {
				return err
			}
			err = hypergraph.WriteHGR(f, c.H)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("%s: %w", hgrPath, err)
			}
		case "netd":
			hgrPath = filepath.Join(*dir, s.Name+".netD")
			arePath := filepath.Join(*dir, s.Name+".are")
			f, err := os.Create(hgrPath)
			if err != nil {
				return err
			}
			af, err := os.Create(arePath)
			if err != nil {
				f.Close()
				return err
			}
			err = hypergraph.WriteNetD(f, af, c.H, c.Pads)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if cerr := af.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("%s: %w", hgrPath, err)
			}
		default:
			return fmt.Errorf("unknown format %q (want hgr or netd)", *format)
		}
		padPath := filepath.Join(*dir, s.Name+".pads")
		pf, err := os.Create(padPath)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(pf)
		for v, isPad := range c.Pads {
			if isPad {
				fmt.Fprintln(bw, v+1) // 1-based, matching .hgr indices
			}
		}
		err = bw.Flush()
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", padPath, err)
		}
		st := c.H.ComputeStats()
		fmt.Printf("%-10s %8d modules %8d nets %9d pins -> %s\n",
			s.Name, st.Cells, st.Nets, st.Pins, hgrPath)
	}
	return nil
}
