// Command statscheck validates a -stats-json report written by
// cmd/mlpart against the mlpart-stats/1 schema: header consistency,
// per-start completeness, internal counter invariants, and non-zero
// wall-clock totals. It is the validation half of `make stats-smoke`.
//
// Usage:
//
//	statscheck -in stats.json [-min-levels 1] [-min-passes 1] [-strip]
//
// -strip additionally prints the report to stdout with every *_ns
// timing field zeroed, in the canonical indented encoding — piping two
// stripped reports through cmp/diff is the cross-parallelism
// determinism check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mlpart"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "statscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "stats JSON file to validate (required)")
		minLevels = flag.Int("min-levels", 1, "minimum coarsening levels required of the best start")
		minPasses = flag.Int("min-passes", 1, "minimum refinement passes required of the best start")
		strip     = flag.Bool("strip", false, "print the report with timings zeroed to stdout")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var r mlpart.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("%s: %v", *in, err)
	}
	if err := validate(&r, *minLevels, *minPasses); err != nil {
		return fmt.Errorf("%s: %v", *in, err)
	}
	if *strip {
		r.StripTimings()
		if err := r.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "statscheck: %s ok (%d starts, best %d, cut %d, %d levels)\n",
		*in, r.Starts, r.BestStart, r.Cut, r.Levels)
	return nil
}

func validate(r *mlpart.Report, minLevels, minPasses int) error {
	if r.Schema != "mlpart-stats/1" {
		return fmt.Errorf("schema %q, want mlpart-stats/1", r.Schema)
	}
	if r.K != 2 && r.K != 4 {
		return fmt.Errorf("k = %d, want 2 or 4", r.K)
	}
	if r.Starts < 1 {
		return fmt.Errorf("starts = %d < 1", r.Starts)
	}
	if len(r.PerStart) != r.Starts {
		return fmt.Errorf("per_start has %d entries, header says %d starts", len(r.PerStart), r.Starts)
	}
	if r.BestStart < 0 || r.BestStart >= r.Starts {
		return fmt.Errorf("best_start %d outside [0,%d) — run produced no solution?", r.BestStart, r.Starts)
	}
	if r.Cut < 0 || r.SumDegrees < r.Cut {
		return fmt.Errorf("objective header inconsistent: cut %d, sum_degrees %d", r.Cut, r.SumDegrees)
	}
	for i, s := range r.PerStart {
		if s.Start != i {
			return fmt.Errorf("per_start[%d].start = %d: merge out of start order", i, s.Start)
		}
		if s.Outcome == "" {
			return fmt.Errorf("start %d: empty outcome", i)
		}
		if s.Attempts < 1 {
			return fmt.Errorf("start %d: attempts = %d < 1", i, s.Attempts)
		}
		for j, l := range s.Coarsening {
			if l.Cells <= 0 || l.Nets < 0 || l.Pins < 0 {
				return fmt.Errorf("start %d coarsening[%d]: bad shape %+v", i, j, l)
			}
			// Each matched pair and each singleton becomes one coarse
			// cell, so the counts must tile the level exactly.
			if l.MatchedPairs < 0 || l.Singletons < 0 || l.MatchedPairs+l.Singletons != l.Cells {
				return fmt.Errorf("start %d coarsening[%d]: pairing counts %+v do not tile the level", i, j, l)
			}
		}
		for j, p := range s.Passes {
			if p.Engine == "" {
				return fmt.Errorf("start %d passes[%d]: empty engine", i, j)
			}
			if p.MovesKept > p.MovesTried || p.RolledBack != p.MovesTried-p.MovesKept {
				return fmt.Errorf("start %d passes[%d]: move counts inconsistent %+v", i, j, p)
			}
		}
		if s.Rebalances < 0 || s.RebalanceMoved < 0 {
			return fmt.Errorf("start %d: negative rebalance counters", i)
		}
		if s.Timings.TotalNS <= 0 {
			return fmt.Errorf("start %d: total_ns = %d, want > 0", i, s.Timings.TotalNS)
		}
	}
	best := r.PerStart[r.BestStart]
	if len(best.Coarsening) != r.Levels {
		return fmt.Errorf("best start has %d coarsening levels, header says %d", len(best.Coarsening), r.Levels)
	}
	if len(best.Coarsening) < minLevels {
		return fmt.Errorf("best start has %d coarsening levels, want >= %d", len(best.Coarsening), minLevels)
	}
	if len(best.Passes) < minPasses {
		return fmt.Errorf("best start has %d refinement passes, want >= %d", len(best.Passes), minPasses)
	}
	return nil
}
