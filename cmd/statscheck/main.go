// Command statscheck validates a statistics report: either a
// -stats-json run report written by cmd/mlpart (schema
// mlpart-stats/1: header consistency, per-start completeness,
// internal counter invariants, non-zero wall-clock totals) or a
// /statsz service snapshot from mlpartd (schema mlpartd-stats/1:
// accounting invariants — accepted = terminals + queued + running,
// including the crash-recovery counters). The schema is detected from
// the document. It is the validation half of `make stats-smoke`,
// `make serve-smoke`, and `make crash-smoke`.
//
// Usage:
//
//	statscheck -in stats.json [-min-levels 1] [-min-passes 1] [-strip]
//	mlpartd ... | statscheck
//	statscheck -journal jobs.wal
//
// With -in empty or "-", the report is read from stdin — that is how
// mlpartd's final stats output is piped straight into validation.
//
// -strip additionally prints a run report to stdout with every *_ns
// timing field zeroed, in the canonical indented encoding — piping two
// stripped reports through cmp/diff is the cross-parallelism
// determinism check. (Service snapshots are inherently stateful, so
// -strip applies only to run reports.)
//
// -journal switches to offline journal inspection: the write-ahead
// job journal at the given path is replayed read-only, its lifecycle
// invariants checked (one accepted and at most one terminal record
// per job, accepted always first, known terminal statuses), and a
// mlpartd-journal/1 dump printed to stdout — per-job state plus
// torn-tail accounting. The crash harness diffs these dumps across a
// kill/restart cycle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mlpart"
	"mlpart/internal/journal"
	"mlpart/internal/server"
	"mlpart/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "statscheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "stats JSON file (empty or \"-\" reads stdin)")
		minLevels = flag.Int("min-levels", 1, "minimum coarsening levels required of the best start (run reports)")
		minPasses = flag.Int("min-passes", 1, "minimum refinement passes required of the best start (run reports)")
		strip     = flag.Bool("strip", false, "print a run report with timings zeroed to stdout")
		jpath     = flag.String("journal", "", "inspect the write-ahead job journal at this path instead of a stats report")
	)
	flag.Parse()

	if *jpath != "" {
		return dumpJournal(*jpath)
	}

	name := *in
	var data []byte
	var err error
	if name == "" || name == "-" {
		name = "stdin"
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(name)
	}
	if err != nil {
		return err
	}

	// Detect the document kind from its schema field before
	// committing to a full decode.
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	switch head.Schema {
	case telemetry.ServiceSchemaVersion: // mlpartd-stats/1
		var r telemetry.ServiceReport
		if err := json.Unmarshal(data, &r); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		if err := validateService(&r); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		if *strip {
			return fmt.Errorf("%s: -strip applies only to %s run reports", name, "mlpart-stats/1")
		}
		fmt.Fprintf(os.Stderr, "statscheck: %s ok (service: %d accepted, %d completed, %d rejected, %d batched/%d flushes, cache %d/%d)\n",
			name, r.Accepted, r.Completed, r.RejectedQueueFull+r.RejectedDraining,
			r.Batched, r.BatchFlushes, r.CacheHits, r.CacheHits+r.CacheMisses)
		return nil
	default:
		var r mlpart.Report
		if err := json.Unmarshal(data, &r); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		if err := validate(&r, *minLevels, *minPasses); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		if *strip {
			r.StripTimings()
			if err := r.WriteJSON(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "statscheck: %s ok (%d starts, best %d, cut %d, %d levels)\n",
			name, r.Starts, r.BestStart, r.Cut, r.Levels)
		return nil
	}
}

// validateService checks the mlpartd-stats/1 accounting invariants.
func validateService(r *telemetry.ServiceReport) error {
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"accepted", r.Accepted},
		{"rejected_queue_full", r.RejectedQueueFull},
		{"rejected_draining", r.RejectedDraining},
		{"invalid", r.Invalid},
		{"completed", r.Completed},
		{"failed", r.Failed},
		{"cancelled", r.Cancelled},
		{"deadline_exceeded", r.DeadlineExceeded},
		{"drained", r.Drained},
		{"retried", r.Retried},
		{"recovered", r.Recovered},
		{"replayed_terminal", r.ReplayedTerminal},
		{"torn_tail_truncated", r.TornTailTruncated},
		{"journal_append_errors", r.JournalAppendErrors},
		{"idempotent_replays", r.IdempotentReplays},
		{"cache_hits", r.CacheHits},
		{"cache_misses", r.CacheMisses},
		{"batched", r.Batched},
		{"batch_flushes", r.BatchFlushes},
		{"events_dropped", r.EventsDropped},
		{"queued", r.Queued},
		{"running", r.Running},
	} {
		if c.v < 0 {
			return fmt.Errorf("%s = %d < 0", c.name, c.v)
		}
	}
	if r.QueueCap < 1 {
		return fmt.Errorf("queue_cap = %d < 1", r.QueueCap)
	}
	// The no-lost-jobs ledger: everything admitted is terminal or
	// still in flight.
	terminals := r.Completed + r.Failed + r.Cancelled + r.DeadlineExceeded + r.Drained
	if r.Accepted != terminals+r.Queued+r.Running {
		return fmt.Errorf("accounting violated: accepted %d != terminals %d + queued %d + running %d",
			r.Accepted, terminals, r.Queued, r.Running)
	}
	// Cache lookups happen once per accepted job.
	if r.CacheHits+r.CacheMisses > r.Accepted {
		return fmt.Errorf("cache lookups %d exceed accepted %d", r.CacheHits+r.CacheMisses, r.Accepted)
	}
	// Recovered jobs are a subset of accepted jobs (each one is
	// re-counted in accepted at replay, which is what keeps the ledger
	// balanced across restarts).
	if r.Recovered > r.Accepted {
		return fmt.Errorf("recovered %d exceeds accepted %d", r.Recovered, r.Accepted)
	}
	// Batched jobs are a subset of accepted jobs (the batch lane is a
	// scheduling decision made after admission).
	if r.Batched > r.Accepted {
		return fmt.Errorf("batched %d exceeds accepted %d", r.Batched, r.Accepted)
	}
	// A batched job can only have run inside a cut batch, and the
	// server bumps batch_flushes before counting any of the batch's
	// jobs — so batched > 0 with no flush is an accounting bug.
	if r.Batched > 0 && r.BatchFlushes == 0 {
		return fmt.Errorf("batched %d with batch_flushes = 0", r.Batched)
	}
	if r.UptimeNS <= 0 {
		return fmt.Errorf("uptime_ns = %d, want > 0", r.UptimeNS)
	}
	return nil
}

func validate(r *mlpart.Report, minLevels, minPasses int) error {
	if r.Schema != "mlpart-stats/1" {
		return fmt.Errorf("schema %q, want mlpart-stats/1", r.Schema)
	}
	if r.K != 2 && r.K != 4 {
		return fmt.Errorf("k = %d, want 2 or 4", r.K)
	}
	if r.Starts < 1 {
		return fmt.Errorf("starts = %d < 1", r.Starts)
	}
	if len(r.PerStart) != r.Starts {
		return fmt.Errorf("per_start has %d entries, header says %d starts", len(r.PerStart), r.Starts)
	}
	if r.BestStart < 0 || r.BestStart >= r.Starts {
		return fmt.Errorf("best_start %d outside [0,%d) — run produced no solution?", r.BestStart, r.Starts)
	}
	if r.Cut < 0 || r.SumDegrees < r.Cut {
		return fmt.Errorf("objective header inconsistent: cut %d, sum_degrees %d", r.Cut, r.SumDegrees)
	}
	for i, s := range r.PerStart {
		if s.Start != i {
			return fmt.Errorf("per_start[%d].start = %d: merge out of start order", i, s.Start)
		}
		if s.Outcome == "" {
			return fmt.Errorf("start %d: empty outcome", i)
		}
		if s.Attempts < 1 {
			return fmt.Errorf("start %d: attempts = %d < 1", i, s.Attempts)
		}
		for j, l := range s.Coarsening {
			if l.Cells <= 0 || l.Nets < 0 || l.Pins < 0 {
				return fmt.Errorf("start %d coarsening[%d]: bad shape %+v", i, j, l)
			}
			// Each matched pair and each singleton becomes one coarse
			// cell, so the counts must tile the level exactly.
			if l.MatchedPairs < 0 || l.Singletons < 0 || l.MatchedPairs+l.Singletons != l.Cells {
				return fmt.Errorf("start %d coarsening[%d]: pairing counts %+v do not tile the level", i, j, l)
			}
		}
		for j, p := range s.Passes {
			if p.Engine == "" {
				return fmt.Errorf("start %d passes[%d]: empty engine", i, j)
			}
			if p.MovesKept > p.MovesTried || p.RolledBack != p.MovesTried-p.MovesKept {
				return fmt.Errorf("start %d passes[%d]: move counts inconsistent %+v", i, j, p)
			}
		}
		if s.Rebalances < 0 || s.RebalanceMoved < 0 {
			return fmt.Errorf("start %d: negative rebalance counters", i)
		}
		if s.Timings.TotalNS <= 0 {
			return fmt.Errorf("start %d: total_ns = %d, want > 0", i, s.Timings.TotalNS)
		}
	}
	best := r.PerStart[r.BestStart]
	if len(best.Coarsening) != r.Levels {
		return fmt.Errorf("best start has %d coarsening levels, header says %d", len(best.Coarsening), r.Levels)
	}
	if len(best.Coarsening) < minLevels {
		return fmt.Errorf("best start has %d coarsening levels, want >= %d", len(best.Coarsening), minLevels)
	}
	if len(best.Passes) < minPasses {
		return fmt.Errorf("best start has %d refinement passes, want >= %d", len(best.Passes), minPasses)
	}
	return nil
}

// journalDump is the mlpartd-journal/1 offline-inspection document:
// per-job lifecycle state folded from the journal's record stream,
// plus replay accounting. It is deterministic for a given journal
// file, so the crash harness can diff dumps across restarts.
type journalDump struct {
	Schema string `json:"schema"`
	// Replay accounting, straight from the read-only load.
	Frames     int   `json:"frames"`
	ValidBytes int64 `json:"valid_bytes"`
	TornBytes  int64 `json:"torn_bytes"`
	Truncated  bool  `json:"truncated"`
	// Record-type totals.
	Accepted int `json:"accepted"`
	Started  int `json:"started"`
	Terminal int `json:"terminal"`
	// Open is the crash debt: accepted jobs with no terminal record —
	// what a restart must re-enqueue.
	Open int          `json:"open"`
	Jobs []journalJob `json:"jobs"`
}

// journalJob is one job's folded lifecycle state, in first-appearance
// order.
type journalJob struct {
	ID  string `json:"id"`
	Seq int    `json:"seq"`
	// Status is the journaled terminal status, or "open" while the
	// job still owes one.
	Status      string `json:"status"`
	Started     bool   `json:"started,omitempty"`
	Recovered   bool   `json:"recovered,omitempty"`
	K           int    `json:"k,omitempty"`
	ContentHash string `json:"content_hash,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	IdemKey     string `json:"idempotency_key,omitempty"`
	// HasRequest reports whether the record still carries the request
	// bytes (compaction strips them from closed jobs).
	HasRequest bool `json:"has_request,omitempty"`
}

// dumpJournal replays the journal read-only, validates the lifecycle
// invariants the server's recovery path relies on, and prints the
// mlpartd-journal/1 dump to stdout.
func dumpJournal(path string) error {
	recs, st, err := journal.Load(path, nil)
	if err != nil {
		return err
	}
	d := journalDump{
		Schema:     "mlpartd-journal/1",
		Frames:     st.Frames,
		ValidBytes: st.ValidBytes,
		TornBytes:  st.TornBytes,
		Truncated:  st.Truncated,
	}
	// byID maps a job id to its index in d.Jobs (indices, not
	// pointers: append reallocates the backing array).
	byID := make(map[string]int)
	for i, r := range recs {
		idx, known := byID[r.ID]
		switch r.Type {
		case journal.TypeAccepted:
			d.Accepted++
			if known {
				return fmt.Errorf("%s: record %d: duplicate accepted record for job %s", path, i, r.ID)
			}
			byID[r.ID] = len(d.Jobs)
			d.Jobs = append(d.Jobs, journalJob{
				ID: r.ID, Seq: r.Seq, Status: "open",
				Recovered: r.Recovered, K: r.K,
				ContentHash: r.ContentHash, Fingerprint: r.Fingerprint,
				IdemKey: r.IdemKey, HasRequest: len(r.Request) > 0,
			})
		case journal.TypeStarted:
			d.Started++
			if !known {
				return fmt.Errorf("%s: record %d: started record for job %s precedes its accepted record", path, i, r.ID)
			}
			d.Jobs[idx].Started = true
		case journal.TypeTerminal:
			d.Terminal++
			if !known {
				return fmt.Errorf("%s: record %d: terminal record for job %s precedes its accepted record", path, i, r.ID)
			}
			if d.Jobs[idx].Status != "open" {
				return fmt.Errorf("%s: record %d: job %s has a second terminal record (%s after %s)", path, i, r.ID, r.Status, d.Jobs[idx].Status)
			}
			if !server.Status(r.Status).Terminal() {
				return fmt.Errorf("%s: record %d: job %s has unknown terminal status %q", path, i, r.ID, r.Status)
			}
			d.Jobs[idx].Status = r.Status
		}
	}
	for i := range d.Jobs {
		if d.Jobs[i].Status == "open" {
			d.Open++
		}
	}
	out, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(append(out, '\n')); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "statscheck: %s ok (journal: %d frames, %d jobs, %d open, %d torn bytes)\n",
		path, d.Frames, len(d.Jobs), d.Open, d.TornBytes)
	return nil
}
