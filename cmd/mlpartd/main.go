// Command mlpartd serves the ML multilevel partitioner as a
// fault-tolerant HTTP service with admission control, per-job
// deadlines, result caching, and graceful drain.
//
// Usage:
//
//	mlpartd [-addr :7997] [-queue 64] [-workers 0] [-cache 256]
//	        [-default-timeout 30s] [-max-timeout 5m] [-drain-timeout 10s]
//	        [-retries 1] [-journal jobs.wal] [-addr-file path]
//	        [-batch-pins 0] [-batch-max 8] [-batch-delay 2ms]
//	        [-batch-workers 1] [-progress-interval 250ms]
//	        [-crash-after-appends n]
//	        [-chaos site:kind:n[:start]] [-chaos-seed 1]
//	        [-smoke] [-stream] [-in circuit.hgr]
//
// API (JSON):
//
//	POST   /v1/jobs             submit {"hgr": "...", "k": 2|4,
//	                            "options": {...}, "timeout_ms": n,
//	                            "stats": bool}; 202 + job document, or
//	                            429 (+Retry-After) when the admission
//	                            queue is full, 503 while draining.
//	GET    /v1/jobs/{id}        job state; ?wait_ms=N long-polls for a
//	                            terminal status.
//	DELETE /v1/jobs/{id}        cancel; the job keeps its best-so-far
//	                            solution.
//	GET    /v1/jobs/{id}/result deterministic result document
//	                            (X-Mlpartd-Cache: hit|miss).
//	GET    /v1/jobs/{id}/events live job lifecycle stream (SSE:
//	                            queued, started, retrying, progress,
//	                            terminal); Last-Event-ID resumes.
//	GET    /v1/events           service-wide ledger delta stream (SSE).
//	GET    /healthz /readyz     liveness / readiness probes.
//	GET    /statsz              service counters, schema
//	                            mlpartd-stats/1 (pipe into statscheck);
//	                            ?schema=bench serves per-stage timing
//	                            aggregates in the mlpart-bench/1 schema.
//
// -batch-pins n routes jobs whose hypergraph has at most n pins onto
// the micro-batch lane: small jobs are coalesced (up to -batch-max
// per batch, lingering at most -batch-delay) and executed on
// -batch-workers dedicated executors that reuse one workspace set per
// worker across the whole batch. Batching is a scheduling detail:
// result documents are byte-identical batched or solo, and one
// crashing job never poisons its batchmates. 0 (the default)
// disables the lane.
//
// SIGTERM or SIGINT starts a graceful drain: admission stops (503),
// in-flight and queued jobs get -drain-timeout to finish, stragglers
// are cancelled cooperatively into the "drained" status, and the
// final service stats are written to stdout before exit. Every
// accepted job reaches exactly one terminal status; the process
// always exits 0 on a clean drain.
//
// -smoke runs the self-test used by `make serve-smoke`: the daemon
// binds a loopback port, drives a real HTTP client through submit /
// wait / result, re-submits to verify the cache hit returns a
// byte-identical result body, then delivers SIGTERM to itself to
// exercise the production drain path and prints the final stats JSON
// to stdout.
//
// -smoke -stream runs the streaming variant used by
// `make stream-smoke` instead: a burst of small jobs (distinct seeds,
// so the result cache never collapses them) exercises the micro-batch
// lane, one SSE consumer verifies the queued → started → completed
// event order and Last-Event-ID resume on a real socket, a second
// consumer reads service-wide ledger deltas from /v1/events, and
// /statsz is checked in both schemas before the self-SIGTERM. The
// final stats JSON (including the batched / batch_flushes /
// events_dropped counters) goes to stdout for statscheck.
//
// -journal makes accepted jobs crash-durable: every job lifecycle
// transition is appended to a write-ahead journal and synced before
// it is acknowledged, and on startup the journal is replayed —
// accepted-but-unfinished jobs from a killed predecessor are re-run,
// closed jobs stay queryable, torn tails are truncated. See the
// README's "Crash recovery" section.
//
// Repeatable -chaos flags arm deterministic fault injection at the
// server.admit / server.job sites, the journal.append /
// journal.replay sites (torn writes, dying disks, corrupt replays),
// plus any pipeline site (which then fires inside every job) for
// chaos testing the recovery paths.
//
// Two flags exist purely for the process-kill crash harness
// (`make crash-smoke`): -addr-file writes the bound listen address to
// a file so the harness can find a :0 listener, and
// -crash-after-appends n SIGKILLs the process the moment the n-th
// journal record becomes durable — a deterministic stand-in for
// pulling the plug mid-burst.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mlpart"
	"mlpart/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlpartd:", err)
		os.Exit(1)
	}
}

// chaosFlags collects repeatable -chaos specs.
type chaosFlags []string

func (c *chaosFlags) String() string     { return strings.Join(*c, ",") }
func (c *chaosFlags) Set(v string) error { *c = append(*c, v); return nil }

func run() error {
	var (
		addr         = flag.String("addr", ":7997", "listen address")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = default 64)")
		workers      = flag.Int("workers", 0, "concurrent job executors (0 = min(4, GOMAXPROCS))")
		cache        = flag.Int("cache", 0, "result cache entries (0 = default 256, negative disables)")
		defTimeout   = flag.Duration("default-timeout", 0, "per-job deadline when the submission names none (0 = default 30s)")
		maxTimeout   = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = default 5m)")
		drainTimeout = flag.Duration("drain-timeout", 0, "grace period for in-flight jobs on shutdown (0 = default 10s)")
		retries      = flag.Int("retries", 0, "extra attempts per failed job (0 = default 1, negative disables)")
		journalPath  = flag.String("journal", "", "write-ahead job journal path (empty disables crash durability)")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file (crash-harness port discovery)")
		batchPins    = flag.Int("batch-pins", 0, "micro-batch jobs with at most this many pins (0 disables batching)")
		batchMax     = flag.Int("batch-max", 0, "jobs per micro-batch (0 = default 8)")
		batchDelay   = flag.Duration("batch-delay", 0, "max linger before a partial batch is cut (0 = default 2ms)")
		batchWorkers = flag.Int("batch-workers", 0, "dedicated batch executors (0 = default 1)")
		progressIvl  = flag.Duration("progress-interval", 0, "SSE progress event period for running jobs (0 = default 250ms, negative disables)")
		crashAfter   = flag.Int("crash-after-appends", 0, "SIGKILL self after the n-th durable journal append (crash harness only)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for probabilistic -chaos triggers")
		smoke        = flag.Bool("smoke", false, "run the loopback self-test and exit")
		stream       = flag.Bool("stream", false, "with -smoke: run the batching + SSE streaming self-test instead")
		in           = flag.String("in", "", "netlist for -smoke (hMETIS .hgr)")
	)
	var chaos chaosFlags
	flag.Var(&chaos, "chaos", "arm a fault: site:kind:n[:start] (repeatable)")
	flag.Parse()

	plan, err := mlpart.ParseFaultSpec(chaos, *chaosSeed)
	if err != nil {
		return err
	}
	cfg := server.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		CacheCap:         *cache,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		DrainTimeout:     *drainTimeout,
		MaxRetries:       *retries,
		JournalPath:      *journalPath,
		BatchPinLimit:    *batchPins,
		BatchMax:         *batchMax,
		BatchDelay:       *batchDelay,
		BatchWorkers:     *batchWorkers,
		ProgressInterval: *progressIvl,
		Inject:           plan,
	}
	if *crashAfter > 0 {
		if *journalPath == "" {
			return fmt.Errorf("-crash-after-appends requires -journal")
		}
		n := *crashAfter
		cfg.JournalAppendHook = func(got int) {
			if got == n {
				// The harness's plug-pull: die with no cleanup the
				// instant the n-th record is durable. SIGKILL cannot be
				// caught, so nothing below this line runs.
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *journalPath != "" {
		rep := srv.Stats()
		fmt.Fprintf(os.Stderr, "mlpartd: journal %s replayed: %d recovered, %d already terminal, %d torn tails\n",
			*journalPath, rep.Recovered, rep.ReplayedTerminal, rep.TornTailTruncated)
	}

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0" // loopback self-test: never a public port
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mlpartd: listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	smokeErr := make(chan error, 1)
	if *smoke {
		if *stream {
			go func() { smokeErr <- runStreamSmoke(ln.Addr().String(), *in, *batchPins > 0) }()
		} else {
			go func() { smokeErr <- runSmoke(ln.Addr().String(), *in) }()
		}
	}

	var clientErr error
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "mlpartd: %v: draining\n", got)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case clientErr = <-smokeErr:
		if clientErr != nil {
			// The self-test failed before reaching its SIGTERM; still
			// drain so every accepted job terminates cleanly.
			fmt.Fprintf(os.Stderr, "mlpartd: smoke failed, draining: %v\n", clientErr)
		} else {
			// The self-test SIGTERMs itself; wait for it here so the
			// drain goes through the production signal path.
			got := <-sig
			fmt.Fprintf(os.Stderr, "mlpartd: %v: draining\n", got)
		}
	}

	// Stop accepting connections, then drain the job layer: admission
	// is already refusing (503) the moment Drain is entered.
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)

	// The final stats snapshot is the drain's flight recorder; -smoke
	// pipes it into statscheck.
	rep := srv.Stats()
	if err := rep.WriteJSON(os.Stdout); err != nil {
		return err
	}
	return clientErr
}

// runSmoke drives the daemon through a real client flow on addr:
// submit, wait, fetch the result, re-submit for a byte-identical
// cache hit, check the probes, then SIGTERM the process to exercise
// the production drain.
func runSmoke(addr, in string) error {
	if in == "" {
		return fmt.Errorf("-smoke requires -in")
	}
	hgr, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	for _, probe := range []string{"/healthz", "/readyz"} {
		if err := expectOK(client, base+probe); err != nil {
			return err
		}
	}

	body, err := json.Marshal(map[string]any{
		"hgr":     string(hgr),
		"k":       2,
		"options": map[string]any{"seed": 1997, "starts": 2},
	})
	if err != nil {
		return err
	}

	first, err := smokeJob(client, base, body)
	if err != nil {
		return fmt.Errorf("first job: %w", err)
	}
	second, err := smokeJob(client, base, body)
	if err != nil {
		return fmt.Errorf("second job: %w", err)
	}
	if second.cache != "hit" {
		return fmt.Errorf("second submission: X-Mlpartd-Cache = %q, want \"hit\"", second.cache)
	}
	if !bytes.Equal(first.result, second.result) {
		return fmt.Errorf("cache hit result differs from computed result (%d vs %d bytes)", len(first.result), len(second.result))
	}
	fmt.Fprintf(os.Stderr, "mlpartd: smoke ok: %d-byte result, cache %s then %s\n",
		len(first.result), first.cache, second.cache)

	return syscall.Kill(os.Getpid(), syscall.SIGTERM)
}

type smokeResult struct {
	result []byte
	cache  string
}

// smokeJob submits body, waits for a terminal status, and fetches the
// result document.
func smokeJob(client *http.Client, base string, body []byte) (smokeResult, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return smokeResult{}, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return smokeResult{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return smokeResult{}, fmt.Errorf("submit: %s: %s", resp.Status, data)
	}
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return smokeResult{}, err
	}

	resp, err = client.Get(base + "/v1/jobs/" + v.ID + "?wait_ms=25000")
	if err != nil {
		return smokeResult{}, err
	}
	data, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return smokeResult{}, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return smokeResult{}, err
	}
	if v.Status != "completed" {
		return smokeResult{}, fmt.Errorf("job %s ended %q, want completed: %s", v.ID, v.Status, data)
	}

	resp, err = client.Get(base + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		return smokeResult{}, err
	}
	res, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return smokeResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return smokeResult{}, fmt.Errorf("result: %s: %s", resp.Status, res)
	}
	return smokeResult{result: res, cache: resp.Header.Get("X-Mlpartd-Cache")}, nil
}

func expectOK(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return nil
}

// runStreamSmoke is the -smoke -stream self-test: a burst of small
// jobs through the micro-batch lane, one SSE consumer per contract
// (job lifecycle order, Last-Event-ID resume, service-wide ledger
// deltas), a /statsz check in both schemas, then SIGTERM to drain.
func runStreamSmoke(addr, in string, batching bool) error {
	if in == "" {
		return fmt.Errorf("-smoke requires -in")
	}
	hgr, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	for _, probe := range []string{"/healthz", "/readyz"} {
		if err := expectOK(client, base+probe); err != nil {
			return err
		}
	}

	// Burst: distinct seeds give distinct fingerprints, so the result
	// cache never collapses the jobs and every one exercises the lane.
	const burst = 8
	ids := make([]string, 0, burst)
	for i := 0; i < burst; i++ {
		k := 2
		if i%2 == 1 {
			k = 4
		}
		body, err := json.Marshal(map[string]any{
			"hgr":     string(hgr),
			"k":       k,
			"options": map[string]any{"seed": 100 + i, "starts": 2},
		})
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("submit %d: %s: %s", i, resp.Status, data)
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		ids = append(ids, v.ID)
	}

	// One SSE consumer on the first job. Whether it attaches live or
	// after the fact, replay + live must yield the same ordered stream:
	// queued first, started before the terminal, ids gapless from 1.
	frames, err := consumeJobEvents(base, ids[0], 0)
	if err != nil {
		return fmt.Errorf("job events: %w", err)
	}
	if err := checkLifecycle(frames, 1); err != nil {
		return fmt.Errorf("job %s events: %w", ids[0], err)
	}

	// Last-Event-ID resume: re-subscribing past the first event must
	// replay exactly the suffix.
	resumed, err := consumeJobEvents(base, ids[0], frames[0].ID)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if len(resumed) != len(frames)-1 || resumed[0].ID != frames[0].ID+1 {
		return fmt.Errorf("resume after id %d: got %d frames starting at id %d, want %d starting at %d",
			frames[0].ID, len(resumed), resumed[0].ID, len(frames)-1, frames[0].ID+1)
	}

	// Every job in the burst must complete with a servable result.
	for i, id := range ids {
		resp, err := client.Get(base + "/v1/jobs/" + id + "?wait_ms=25000")
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var v struct {
			Status  string `json:"status"`
			Batched bool   `json:"batched"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if v.Status != "completed" {
			return fmt.Errorf("job %s ended %q, want completed: %s", id, v.Status, data)
		}
		if batching && !v.Batched {
			return fmt.Errorf("job %s (burst %d) not batched with batching enabled", id, i)
		}
		if err := expectOK(client, base+"/v1/jobs/"+id+"/result"); err != nil {
			return err
		}
	}

	// The service-wide stream replays ledger deltas for the burst.
	if err := readServiceEvents(base, 3); err != nil {
		return fmt.Errorf("service events: %w", err)
	}

	// /statsz must answer in both schemas.
	var bench struct {
		Schema  string           `json:"schema"`
		Entries []map[string]any `json:"entries"`
	}
	if err := getJSON(client, base+"/statsz?schema=bench", &bench); err != nil {
		return err
	}
	if bench.Schema != "mlpart-bench/1" {
		return fmt.Errorf("/statsz?schema=bench: schema %q, want mlpart-bench/1", bench.Schema)
	}
	if len(bench.Entries) == 0 {
		return fmt.Errorf("/statsz?schema=bench: no entries after %d completed jobs", burst)
	}
	var svc struct {
		Schema       string `json:"schema"`
		Batched      int64  `json:"batched"`
		BatchFlushes int64  `json:"batch_flushes"`
	}
	if err := getJSON(client, base+"/statsz", &svc); err != nil {
		return err
	}
	if batching {
		if svc.Batched != burst {
			return fmt.Errorf("/statsz: batched = %d, want %d", svc.Batched, burst)
		}
		if svc.BatchFlushes == 0 {
			return fmt.Errorf("/statsz: batched = %d with batch_flushes = 0", svc.Batched)
		}
	} else if svc.Batched != 0 {
		return fmt.Errorf("/statsz: batched = %d with batching disabled", svc.Batched)
	}

	fmt.Fprintf(os.Stderr, "mlpartd: stream smoke ok: %d jobs, %d events on %s, %d batched over %d flushes\n",
		burst, len(frames), ids[0], svc.Batched, svc.BatchFlushes)

	return syscall.Kill(os.Getpid(), syscall.SIGTERM)
}

// consumeJobEvents reads the full SSE stream for one job — the
// stream ends when the server closes it after the terminal event —
// and parses it into frames. lastID > 0 resumes via Last-Event-ID.
func consumeJobEvents(base, id string, lastID int64) ([]server.SSEFrame, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
	}
	// No client timeout: the stream lives until the job's terminal
	// event, which the per-job deadline already bounds.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", req.URL, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, fmt.Errorf("%s: Content-Type %q, want text/event-stream", req.URL, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return server.ParseSSE(raw), nil
}

// checkLifecycle asserts the ordered SSE contract on one job's
// frames: ids gapless from firstID, queued first, started before the
// single terminal event, which comes last.
func checkLifecycle(frames []server.SSEFrame, firstID int64) error {
	if len(frames) < 3 {
		return fmt.Errorf("only %d frames, want at least queued/started/terminal", len(frames))
	}
	started := false
	for i, f := range frames {
		if f.ID != firstID+int64(i) {
			return fmt.Errorf("frame %d has id %d, want gapless %d", i, f.ID, firstID+int64(i))
		}
		switch f.Event {
		case "queued":
			if i != 0 {
				return fmt.Errorf("queued at position %d, want 0", i)
			}
		case "started":
			started = true
		case "progress", "retrying":
		case "completed":
			if !started {
				return fmt.Errorf("completed before started")
			}
			if i != len(frames)-1 {
				return fmt.Errorf("terminal event at %d of %d, want last", i, len(frames)-1)
			}
		default:
			return fmt.Errorf("unexpected event %q", f.Event)
		}
	}
	if last := frames[len(frames)-1].Event; last != "completed" {
		return fmt.Errorf("stream ends with %q, want completed", last)
	}
	return nil
}

// readServiceEvents reads n frames from the never-ending /v1/events
// stream and verifies they are ledger deltas, then hangs up.
func readServiceEvents(base string, n int) error {
	resp, err := http.DefaultClient.Get(base + "/v1/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/events: %s", resp.Status)
	}
	br := bufio.NewReader(resp.Body)
	var p server.SSEParser
	for i := 0; i < n; i++ {
		f, err := server.ReadSSEFrame(br, &p)
		if err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		if f.Event != "ledger" {
			return fmt.Errorf("frame %d: event %q, want ledger", i, f.Event)
		}
		var delta struct {
			Change string `json:"change"`
		}
		if err := json.Unmarshal([]byte(f.Data), &delta); err != nil {
			return fmt.Errorf("frame %d data: %w", i, err)
		}
		if delta.Change == "" {
			return fmt.Errorf("frame %d: empty change in %s", i, f.Data)
		}
	}
	return nil
}

// getJSON fetches url and decodes the 200 body into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, data)
	}
	return json.Unmarshal(data, v)
}
