// Command mlpartd serves the ML multilevel partitioner as a
// fault-tolerant HTTP service with admission control, per-job
// deadlines, result caching, and graceful drain.
//
// Usage:
//
//	mlpartd [-addr :7997] [-queue 64] [-workers 0] [-cache 256]
//	        [-default-timeout 30s] [-max-timeout 5m] [-drain-timeout 10s]
//	        [-retries 1] [-journal jobs.wal] [-addr-file path]
//	        [-crash-after-appends n]
//	        [-chaos site:kind:n[:start]] [-chaos-seed 1]
//	        [-smoke] [-in circuit.hgr]
//
// API (JSON):
//
//	POST   /v1/jobs             submit {"hgr": "...", "k": 2|4,
//	                            "options": {...}, "timeout_ms": n,
//	                            "stats": bool}; 202 + job document, or
//	                            429 (+Retry-After) when the admission
//	                            queue is full, 503 while draining.
//	GET    /v1/jobs/{id}        job state; ?wait_ms=N long-polls for a
//	                            terminal status.
//	DELETE /v1/jobs/{id}        cancel; the job keeps its best-so-far
//	                            solution.
//	GET    /v1/jobs/{id}/result deterministic result document
//	                            (X-Mlpartd-Cache: hit|miss).
//	GET    /healthz /readyz     liveness / readiness probes.
//	GET    /statsz              service counters, schema
//	                            mlpartd-stats/1 (pipe into statscheck).
//
// SIGTERM or SIGINT starts a graceful drain: admission stops (503),
// in-flight and queued jobs get -drain-timeout to finish, stragglers
// are cancelled cooperatively into the "drained" status, and the
// final service stats are written to stdout before exit. Every
// accepted job reaches exactly one terminal status; the process
// always exits 0 on a clean drain.
//
// -smoke runs the self-test used by `make serve-smoke`: the daemon
// binds a loopback port, drives a real HTTP client through submit /
// wait / result, re-submits to verify the cache hit returns a
// byte-identical result body, then delivers SIGTERM to itself to
// exercise the production drain path and prints the final stats JSON
// to stdout.
//
// -journal makes accepted jobs crash-durable: every job lifecycle
// transition is appended to a write-ahead journal and synced before
// it is acknowledged, and on startup the journal is replayed —
// accepted-but-unfinished jobs from a killed predecessor are re-run,
// closed jobs stay queryable, torn tails are truncated. See the
// README's "Crash recovery" section.
//
// Repeatable -chaos flags arm deterministic fault injection at the
// server.admit / server.job sites, the journal.append /
// journal.replay sites (torn writes, dying disks, corrupt replays),
// plus any pipeline site (which then fires inside every job) for
// chaos testing the recovery paths.
//
// Two flags exist purely for the process-kill crash harness
// (`make crash-smoke`): -addr-file writes the bound listen address to
// a file so the harness can find a :0 listener, and
// -crash-after-appends n SIGKILLs the process the moment the n-th
// journal record becomes durable — a deterministic stand-in for
// pulling the plug mid-burst.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mlpart"
	"mlpart/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlpartd:", err)
		os.Exit(1)
	}
}

// chaosFlags collects repeatable -chaos specs.
type chaosFlags []string

func (c *chaosFlags) String() string     { return strings.Join(*c, ",") }
func (c *chaosFlags) Set(v string) error { *c = append(*c, v); return nil }

func run() error {
	var (
		addr         = flag.String("addr", ":7997", "listen address")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = default 64)")
		workers      = flag.Int("workers", 0, "concurrent job executors (0 = min(4, GOMAXPROCS))")
		cache        = flag.Int("cache", 0, "result cache entries (0 = default 256, negative disables)")
		defTimeout   = flag.Duration("default-timeout", 0, "per-job deadline when the submission names none (0 = default 30s)")
		maxTimeout   = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = default 5m)")
		drainTimeout = flag.Duration("drain-timeout", 0, "grace period for in-flight jobs on shutdown (0 = default 10s)")
		retries      = flag.Int("retries", 0, "extra attempts per failed job (0 = default 1, negative disables)")
		journalPath  = flag.String("journal", "", "write-ahead job journal path (empty disables crash durability)")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file (crash-harness port discovery)")
		crashAfter   = flag.Int("crash-after-appends", 0, "SIGKILL self after the n-th durable journal append (crash harness only)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for probabilistic -chaos triggers")
		smoke        = flag.Bool("smoke", false, "run the loopback self-test and exit")
		in           = flag.String("in", "", "netlist for -smoke (hMETIS .hgr)")
	)
	var chaos chaosFlags
	flag.Var(&chaos, "chaos", "arm a fault: site:kind:n[:start] (repeatable)")
	flag.Parse()

	plan, err := mlpart.ParseFaultSpec(chaos, *chaosSeed)
	if err != nil {
		return err
	}
	cfg := server.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		CacheCap:       *cache,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
		MaxRetries:     *retries,
		JournalPath:    *journalPath,
		Inject:         plan,
	}
	if *crashAfter > 0 {
		if *journalPath == "" {
			return fmt.Errorf("-crash-after-appends requires -journal")
		}
		n := *crashAfter
		cfg.JournalAppendHook = func(got int) {
			if got == n {
				// The harness's plug-pull: die with no cleanup the
				// instant the n-th record is durable. SIGKILL cannot be
				// caught, so nothing below this line runs.
				_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *journalPath != "" {
		rep := srv.Stats()
		fmt.Fprintf(os.Stderr, "mlpartd: journal %s replayed: %d recovered, %d already terminal, %d torn tails\n",
			*journalPath, rep.Recovered, rep.ReplayedTerminal, rep.TornTailTruncated)
	}

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0" // loopback self-test: never a public port
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mlpartd: listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	smokeErr := make(chan error, 1)
	if *smoke {
		go func() { smokeErr <- runSmoke(ln.Addr().String(), *in) }()
	}

	var clientErr error
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "mlpartd: %v: draining\n", got)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case clientErr = <-smokeErr:
		if clientErr != nil {
			// The self-test failed before reaching its SIGTERM; still
			// drain so every accepted job terminates cleanly.
			fmt.Fprintf(os.Stderr, "mlpartd: smoke failed, draining: %v\n", clientErr)
		} else {
			// The self-test SIGTERMs itself; wait for it here so the
			// drain goes through the production signal path.
			got := <-sig
			fmt.Fprintf(os.Stderr, "mlpartd: %v: draining\n", got)
		}
	}

	// Stop accepting connections, then drain the job layer: admission
	// is already refusing (503) the moment Drain is entered.
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)

	// The final stats snapshot is the drain's flight recorder; -smoke
	// pipes it into statscheck.
	rep := srv.Stats()
	if err := rep.WriteJSON(os.Stdout); err != nil {
		return err
	}
	return clientErr
}

// runSmoke drives the daemon through a real client flow on addr:
// submit, wait, fetch the result, re-submit for a byte-identical
// cache hit, check the probes, then SIGTERM the process to exercise
// the production drain.
func runSmoke(addr, in string) error {
	if in == "" {
		return fmt.Errorf("-smoke requires -in")
	}
	hgr, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	for _, probe := range []string{"/healthz", "/readyz"} {
		if err := expectOK(client, base+probe); err != nil {
			return err
		}
	}

	body, err := json.Marshal(map[string]any{
		"hgr":     string(hgr),
		"k":       2,
		"options": map[string]any{"seed": 1997, "starts": 2},
	})
	if err != nil {
		return err
	}

	first, err := smokeJob(client, base, body)
	if err != nil {
		return fmt.Errorf("first job: %w", err)
	}
	second, err := smokeJob(client, base, body)
	if err != nil {
		return fmt.Errorf("second job: %w", err)
	}
	if second.cache != "hit" {
		return fmt.Errorf("second submission: X-Mlpartd-Cache = %q, want \"hit\"", second.cache)
	}
	if !bytes.Equal(first.result, second.result) {
		return fmt.Errorf("cache hit result differs from computed result (%d vs %d bytes)", len(first.result), len(second.result))
	}
	fmt.Fprintf(os.Stderr, "mlpartd: smoke ok: %d-byte result, cache %s then %s\n",
		len(first.result), first.cache, second.cache)

	return syscall.Kill(os.Getpid(), syscall.SIGTERM)
}

type smokeResult struct {
	result []byte
	cache  string
}

// smokeJob submits body, waits for a terminal status, and fetches the
// result document.
func smokeJob(client *http.Client, base string, body []byte) (smokeResult, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return smokeResult{}, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return smokeResult{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return smokeResult{}, fmt.Errorf("submit: %s: %s", resp.Status, data)
	}
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return smokeResult{}, err
	}

	resp, err = client.Get(base + "/v1/jobs/" + v.ID + "?wait_ms=25000")
	if err != nil {
		return smokeResult{}, err
	}
	data, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return smokeResult{}, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return smokeResult{}, err
	}
	if v.Status != "completed" {
		return smokeResult{}, fmt.Errorf("job %s ended %q, want completed: %s", v.ID, v.Status, data)
	}

	resp, err = client.Get(base + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		return smokeResult{}, err
	}
	res, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return smokeResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return smokeResult{}, fmt.Errorf("result: %s: %s", resp.Status, res)
	}
	return smokeResult{result: res, cache: resp.Header.Get("X-Mlpartd-Cache")}, nil
}

func expectOK(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return nil
}
