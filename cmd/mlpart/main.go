// Command mlpart partitions a netlist hypergraph from an hMETIS
// .hgr file using the ML multilevel algorithm (Alpert/Huang/Kahng,
// DAC 1997) and writes the block assignment.
//
// Usage:
//
//	mlpart -in circuit.hgr|circuit.netD [-out circuit.part] [-k 2|4]
//	       [-engine clip|fm] [-ratio 0.5] [-threshold 35]
//	       [-tolerance 0.1] [-starts 1] [-parallel 0]
//	       [-intra-parallel 0] [-seed 1997]
//	       [-stats] [-timeout 30s] [-audit] [-chaos site:kind:n]
//	       [-stats-json stats.json] [-v]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -stats-json arms the telemetry collector and writes the run report
// (schema "mlpart-stats/1": per-level coarsening stats, per-pass
// refinement stats, rebalance counters, per-stage wall-clock) as
// indented JSON. Everything except the timings block (the *_ns
// fields plus the intra_workers and *_par_regions execution-profile
// counters) is bit-identical across -parallel values and across
// -intra-parallel worker counts >= 1. -v prints a human-readable
// per-level summary of the winning start to stderr. -cpuprofile and
// -memprofile write pprof profiles of the whole run.
//
// With -k 2 it bipartitions (the paper's ML_F / ML_C); with -k 4 it
// quadrisects with the sum-of-degrees gain (§IV.D).
//
// Parallelism has two independent axes. -parallel is the inter-start
// axis: starts run under a fault-isolated parallel supervisor whose
// worker pool it bounds (0 = GOMAXPROCS-capped, 1 = sequential; the
// result is bit-identical for every value, but it only helps when
// -starts > 1). -intra-parallel is the intra-start axis: it sizes a
// per-start worker pool that parallelizes match scoring and induce
// assembly and switches refinement to the sub-round-synchronous
// engine — the knob that speeds up a single large instance. 0 (the
// default) is the exact legacy serial pipeline; any value >= 1 gives
// bit-identical results across all values >= 1 (1 vs 8 workers only
// changes wall-clock), though 0 and >= 1 may produce different,
// equally valid cuts. The axes compose: total worker demand is
// roughly their product.
//
// Repeatable -chaos flags arm deterministic fault injection
// ("site:kind:n[:start]", e.g. -chaos fm.pass:panic:2) for testing
// the recovery paths. With multiple starts or armed chaos a per-start
// outcome summary is printed to stderr.
//
// A -timeout deadline or a SIGINT/SIGTERM cancels the run
// cooperatively: the best feasible partition found so far is still
// written and the command exits 0 with an "interrupted" note on
// stderr. The exit code is non-zero only when no feasible solution
// exists yet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"mlpart"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlpart:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input .hgr netlist (required)")
		out       = flag.String("out", "", "output partition file (default stdout)")
		k         = flag.Int("k", 2, "number of blocks: 2 (bipartition) or 4 (quadrisect)")
		engine    = flag.String("engine", "clip", "refinement engine: clip, fm, prop, or clprop")
		ratio     = flag.Float64("ratio", 0, "matching ratio R in (0,1] (default 0.5 bipartition, 1.0 quadrisect)")
		threshold = flag.Int("threshold", 0, "coarsening threshold T (default 35 bipartition, 100 quadrisect)")
		tolerance = flag.Float64("tolerance", 0.1, "balance tolerance r")
		starts    = flag.Int("starts", 1, "independent runs; best kept")
		parallel  = flag.Int("parallel", 0, "inter-start worker pool for -starts (0 = GOMAXPROCS-capped, 1 = sequential; bit-identical results)")
		intraPar  = flag.Int("intra-parallel", 0, "intra-start worker pool for match/induce/refine (0 = serial legacy pipeline; results identical for all values >= 1)")
		seed      = flag.Int64("seed", 1997, "random seed")
		stats     = flag.Bool("stats", false, "print circuit statistics before partitioning")
		timeout   = flag.Duration("timeout", 0, "cancel after this duration, writing the best-so-far partition (0 = no limit)")
		audit     = flag.Bool("audit", false, "run invariant audits at every level transition")
		statsJSON = flag.String("stats-json", "", "write the telemetry run report (schema mlpart-stats/1) as JSON to this path")
		verbose   = flag.Bool("v", false, "print a per-level telemetry summary of the best start to stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprof   = flag.String("memprofile", "", "write a heap profile to this path")
		chaos     []string
	)
	flag.Func("chaos", "arm a fault: site:kind:n[:start] (repeatable; kind panic|cancel|delay|corrupt)", func(s string) error {
		chaos = append(chaos, s)
		return nil
	})
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	if *cpuprof != "" {
		cf, cerr := os.Create(*cpuprof)
		if cerr != nil {
			return cerr
		}
		defer cf.Close()
		if cerr := pprof.StartCPUProfile(cf); cerr != nil {
			return cerr
		}
		defer pprof.StopCPUProfile()
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	var h *mlpart.Hypergraph
	if strings.HasSuffix(*in, ".net") || strings.HasSuffix(*in, ".netD") {
		// The ACM/SIGDA benchmark format; a sibling .are file supplies
		// areas when present.
		var areR io.Reader
		if af, aerr := os.Open(strings.TrimSuffix(strings.TrimSuffix(*in, ".netD"), ".net") + ".are"); aerr == nil {
			defer af.Close()
			areR = af
		}
		var c *mlpart.NetDCircuit
		c, err = mlpart.ReadNetD(f, areR)
		if err == nil {
			h = c.H
		}
	} else {
		h, err = mlpart.ReadHGR(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	if *stats {
		s := h.ComputeStats()
		fmt.Fprintf(os.Stderr, "%s: %d modules, %d nets, %d pins (avg net %.2f, max net %d)\n",
			*in, s.Cells, s.Nets, s.Pins, s.AvgNet, s.MaxNet)
	}
	opt := mlpart.Options{
		MatchingRatio:    *ratio,
		Threshold:        *threshold,
		Tolerance:        *tolerance,
		Seed:             *seed,
		Starts:           *starts,
		Parallelism:      *parallel,
		IntraParallelism: *intraPar,
		Audit:            *audit,
	}
	if *statsJSON != "" || *verbose {
		opt.Telemetry = mlpart.NewTelemetry()
	}
	if len(chaos) > 0 {
		plan, perr := mlpart.ParseFaultSpec(chaos, *seed)
		if perr != nil {
			return perr
		}
		opt.Inject = plan
	}
	switch *engine {
	case "clip":
		opt.Engine = mlpart.EngineCLIP
	case "fm":
		opt.Engine = mlpart.EngineFM
	case "prop":
		opt.Engine = mlpart.EnginePROP
	case "clprop":
		opt.Engine = mlpart.EngineCLIPPROP
	default:
		return fmt.Errorf("unknown engine %q (want clip, fm, prop, or clprop)", *engine)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	start := time.Now()
	var p *mlpart.Partition
	var info mlpart.Info
	switch *k {
	case 2:
		p, info, err = mlpart.BipartitionCtx(ctx, h, opt)
	case 4:
		p, info, err = mlpart.QuadrisectCtx(ctx, h, opt)
	default:
		return fmt.Errorf("-k must be 2 or 4, got %d", *k)
	}
	if err != nil {
		var ierr *mlpart.InternalError
		if errors.As(err, &ierr) && p != nil {
			// Recovered internal panic with a feasible solution: warn
			// and write the last good partition.
			fmt.Fprintf(os.Stderr, "mlpart: recovered internal error (%v); writing last good solution\n", ierr)
		} else {
			return err
		}
	}
	if info.Interrupted {
		fmt.Fprintln(os.Stderr, "mlpart: interrupted; writing best-so-far partition")
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "cut %d", info.Cut)
	if *k == 4 {
		fmt.Fprintf(os.Stderr, " (sum-of-degrees %d)", info.SumDegrees)
	}
	fmt.Fprintf(os.Stderr, ", %d levels, %d start(s), %.2fs\n", info.Levels, info.Starts, elapsed.Seconds())
	if *starts > 1 || len(chaos) > 0 {
		printStartSummary(info, len(chaos) > 0)
	}
	if *verbose {
		printTelemetrySummary(opt.Telemetry.Report())
	}
	if *statsJSON != "" {
		if werr := writeStatsJSON(*statsJSON, opt.Telemetry.Report()); werr != nil {
			return werr
		}
	}
	areas := p.BlockAreas(h)
	fmt.Fprintf(os.Stderr, "block areas: %v\n", areas)

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if werr := mlpart.WritePartition(w, p); werr != nil {
		return werr
	}
	if *memprof != "" {
		mf, merr := os.Create(*memprof)
		if merr != nil {
			return merr
		}
		defer mf.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		if merr := pprof.WriteHeapProfile(mf); merr != nil {
			return merr
		}
	}
	return nil
}

// writeStatsJSON writes the telemetry report to path in the canonical
// -stats-json encoding.
func writeStatsJSON(path string, r *mlpart.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printTelemetrySummary renders the winning start's per-level history
// to stderr in a human-readable form (-v).
func printTelemetrySummary(r *mlpart.Report) {
	if r == nil || r.BestStart < 0 || r.BestStart >= len(r.PerStart) {
		fmt.Fprintln(os.Stderr, "telemetry: no winning start to summarize")
		return
	}
	s := r.PerStart[r.BestStart]
	fmt.Fprintf(os.Stderr, "best start %d (%s): %d level(s), %d pass(es), %d rebalance(s) moving %d cell(s)\n",
		s.Start, s.Outcome, len(s.Coarsening), len(s.Passes), s.Rebalances, s.RebalanceMoved)
	for _, l := range s.Coarsening {
		fmt.Fprintf(os.Stderr, "  level %d: %d cells, %d nets, %d pins (%d pairs, %d singletons, max area %d)\n",
			l.Level, l.Cells, l.Nets, l.Pins, l.MatchedPairs, l.Singletons, l.LargestClusterArea)
	}
	for _, ps := range s.Passes {
		cut := "n/a"
		if ps.CutBefore >= 0 {
			cut = fmt.Sprintf("%d -> %d", ps.CutBefore, ps.CutAfter)
		}
		fmt.Fprintf(os.Stderr, "  level %d %s pass %d: cut %s, moves %d tried / %d kept\n",
			ps.Level, ps.Engine, ps.Pass, cut, ps.MovesTried, ps.MovesKept)
	}
	t := s.Timings
	fmt.Fprintf(os.Stderr, "  stage times: coarsen %.3fms, refine %.3fms, project %.3fms, rebalance %.3fms (start total %.3fms)\n",
		float64(t.CoarsenNS)/1e6, float64(t.RefineNS)/1e6, float64(t.ProjectNS)/1e6,
		float64(t.RebalanceNS)/1e6, float64(t.TotalNS)/1e6)
}

// printStartSummary writes the per-start outcome taxonomy to stderr:
// one aggregate line always, plus one line per start when fault
// injection is armed (detail).
func printStartSummary(info mlpart.Info, detail bool) {
	counts := make(map[mlpart.StartOutcome]int)
	for _, r := range info.StartReports {
		counts[r.Outcome]++
	}
	var parts []string
	for _, o := range []mlpart.StartOutcome{
		mlpart.StartOK, mlpart.StartRecovered, mlpart.StartRetried,
		mlpart.StartTimedOut, mlpart.StartCancelled, mlpart.StartFailed,
	} {
		if n := counts[o]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, o))
		}
	}
	fmt.Fprintf(os.Stderr, "starts: %s; best start %d\n", strings.Join(parts, ", "), info.BestStart)
	if !detail {
		return
	}
	for _, r := range info.StartReports {
		line := fmt.Sprintf("  start %d: %s (%d attempt(s), %d fault(s)", r.Start, r.Outcome, r.Attempts, r.Faults)
		if r.Cost >= 0 {
			line += fmt.Sprintf(", cost %d", r.Cost)
		}
		line += ")"
		if r.Err != nil {
			line += ": " + r.Err.Error()
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
