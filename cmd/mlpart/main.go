// Command mlpart partitions a netlist hypergraph from an hMETIS
// .hgr file using the ML multilevel algorithm (Alpert/Huang/Kahng,
// DAC 1997) and writes the block assignment.
//
// Usage:
//
//	mlpart -in circuit.hgr|circuit.netD [-out circuit.part] [-k 2|4]
//	       [-engine clip|fm] [-ratio 0.5] [-threshold 35]
//	       [-tolerance 0.1] [-starts 1] [-seed 1997] [-stats]
//
// With -k 2 it bipartitions (the paper's ML_F / ML_C); with -k 4 it
// quadrisects with the sum-of-degrees gain (§IV.D).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mlpart"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlpart:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input .hgr netlist (required)")
		out       = flag.String("out", "", "output partition file (default stdout)")
		k         = flag.Int("k", 2, "number of blocks: 2 (bipartition) or 4 (quadrisect)")
		engine    = flag.String("engine", "clip", "refinement engine: clip, fm, prop, or clprop")
		ratio     = flag.Float64("ratio", 0, "matching ratio R in (0,1] (default 0.5 bipartition, 1.0 quadrisect)")
		threshold = flag.Int("threshold", 0, "coarsening threshold T (default 35 bipartition, 100 quadrisect)")
		tolerance = flag.Float64("tolerance", 0.1, "balance tolerance r")
		starts    = flag.Int("starts", 1, "independent runs; best kept")
		seed      = flag.Int64("seed", 1997, "random seed")
		stats     = flag.Bool("stats", false, "print circuit statistics before partitioning")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	var h *mlpart.Hypergraph
	if strings.HasSuffix(*in, ".net") || strings.HasSuffix(*in, ".netD") {
		// The ACM/SIGDA benchmark format; a sibling .are file supplies
		// areas when present.
		var areR io.Reader
		if af, aerr := os.Open(strings.TrimSuffix(strings.TrimSuffix(*in, ".netD"), ".net") + ".are"); aerr == nil {
			defer af.Close()
			areR = af
		}
		var c *mlpart.NetDCircuit
		c, err = mlpart.ReadNetD(f, areR)
		if err == nil {
			h = c.H
		}
	} else {
		h, err = mlpart.ReadHGR(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	if *stats {
		s := h.ComputeStats()
		fmt.Fprintf(os.Stderr, "%s: %d modules, %d nets, %d pins (avg net %.2f, max net %d)\n",
			*in, s.Cells, s.Nets, s.Pins, s.AvgNet, s.MaxNet)
	}
	opt := mlpart.Options{
		MatchingRatio: *ratio,
		Threshold:     *threshold,
		Tolerance:     *tolerance,
		Seed:          *seed,
		Starts:        *starts,
	}
	switch *engine {
	case "clip":
		opt.Engine = mlpart.EngineCLIP
	case "fm":
		opt.Engine = mlpart.EngineFM
	case "prop":
		opt.Engine = mlpart.EnginePROP
	case "clprop":
		opt.Engine = mlpart.EngineCLIPPROP
	default:
		return fmt.Errorf("unknown engine %q (want clip, fm, prop, or clprop)", *engine)
	}

	start := time.Now()
	var p *mlpart.Partition
	var info mlpart.Info
	switch *k {
	case 2:
		p, info, err = mlpart.Bipartition(h, opt)
	case 4:
		p, info, err = mlpart.Quadrisect(h, opt)
	default:
		return fmt.Errorf("-k must be 2 or 4, got %d", *k)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "cut %d", info.Cut)
	if *k == 4 {
		fmt.Fprintf(os.Stderr, " (sum-of-degrees %d)", info.SumDegrees)
	}
	fmt.Fprintf(os.Stderr, ", %d levels, %d start(s), %.2fs\n", info.Levels, info.Starts, elapsed.Seconds())
	areas := p.BlockAreas(h)
	fmt.Fprintf(os.Stderr, "block areas: %v\n", areas)

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	return mlpart.WritePartition(w, p)
}
