// Command cutverify checks a partition file against a netlist: it
// recomputes the cut (and sum-of-degrees for k > 2), verifies the
// §III.B balance bound, and exits non-zero if the partition is
// malformed or unbalanced. Useful for validating solutions produced
// by other tools before comparing against mlpart.
//
// Usage:
//
//	cutverify -hgr circuit.hgr -part circuit.part [-k 2] [-tolerance 0.1]
package main

import (
	"flag"
	"fmt"
	"os"

	"mlpart"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cutverify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		hgrPath   = flag.String("hgr", "", "netlist in hMETIS format (required)")
		partPath  = flag.String("part", "", "partition file, one block index per line (required)")
		k         = flag.Int("k", 0, "expected number of blocks (0 = infer from file)")
		tolerance = flag.Float64("tolerance", 0.1, "balance tolerance r")
	)
	flag.Parse()
	if *hgrPath == "" || *partPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -hgr or -part")
	}
	hf, err := os.Open(*hgrPath)
	if err != nil {
		return err
	}
	h, err := mlpart.ReadHGR(hf)
	hf.Close()
	if err != nil {
		return err
	}
	pf, err := os.Open(*partPath)
	if err != nil {
		return err
	}
	p, err := mlpart.ReadPartition(pf, h.NumCells())
	pf.Close()
	if err != nil {
		return err
	}
	if *k != 0 && p.K != *k {
		return fmt.Errorf("partition has %d blocks, expected %d", p.K, *k)
	}
	if err := p.Validate(h.NumCells()); err != nil {
		return err
	}
	cut := p.Cut(h)
	fmt.Printf("blocks:          %d\n", p.K)
	fmt.Printf("cut nets:        %d of %d\n", cut, h.NumNets())
	if p.K > 2 {
		fmt.Printf("sum of degrees:  %d\n", p.SumOfDegrees(h))
	}
	areas := p.BlockAreas(h)
	fmt.Printf("block areas:     %v (total %d)\n", areas, h.TotalArea())
	bound := mlpart.Balance(h, p.K, *tolerance)
	fmt.Printf("balance bound:   [%d, %d] at r = %v\n", bound.Lo, bound.Hi, *tolerance)
	if !p.IsBalanced(h, bound) {
		return fmt.Errorf("partition violates the balance bound")
	}
	fmt.Println("balance:         OK")
	return nil
}
