// Command drawplace renders a placement of a netlist as an SVG: it
// runs the top-down ML placer (or the GORDIAN-style quadratic placer
// with -gordian) on an .hgr netlist and draws cells as dots with the
// nets' bounding boxes, so placement quality is visible at a glance.
//
// Usage:
//
//	drawplace -in circuit.hgr [-out placement.svg] [-gordian]
//	          [-seed 1997] [-size 800] [-maxnets 500]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mlpart"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drawplace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "input .hgr netlist (required)")
		out     = flag.String("out", "", "output SVG (default stdout)")
		gordian = flag.Bool("gordian", false, "use the GORDIAN-style quadratic placer instead of top-down ML")
		seed    = flag.Int64("seed", 1997, "random seed")
		size    = flag.Int("size", 800, "SVG canvas size in pixels")
		maxNets = flag.Int("maxnets", 500, "draw at most this many net bounding boxes (0 = none)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	h, err := mlpart.ReadHGR(f)
	f.Close()
	if err != nil {
		return err
	}

	var x, y []float64
	var hpwl float64
	if *gordian {
		// GORDIAN-style baseline: quadrant structure from the
		// quadratic placement, with deterministic jitter inside each
		// quadrant for visibility.
		p, _, err := mlpart.GordianQuadrisect(h, nil, *seed)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed))
		x = make([]float64, h.NumCells())
		y = make([]float64, h.NumCells())
		for v := 0; v < h.NumCells(); v++ {
			qx := float64(p.Part[v]&1)*0.5 + 0.05 + 0.4*rng.Float64()
			qy := float64(p.Part[v]>>1)*0.5 + 0.05 + 0.4*rng.Float64()
			x[v], y[v] = qx, qy
		}
		hpwl = mlpart.PlacementHPWL(h, x, y)
	} else {
		pl, err := mlpart.Place(h, nil, nil, nil, mlpart.PlacerConfig{}, *seed)
		if err != nil {
			return err
		}
		x, y, hpwl = pl.X, pl.Y, pl.HPWL
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if err := writeSVG(w, h, x, y, *size, *maxNets, hpwl); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "placed %d cells, HPWL %.2f\n", h.NumCells(), hpwl)
	return nil
}

func writeSVG(w *os.File, h *mlpart.Hypergraph, x, y []float64, size, maxNets int, hpwl float64) error {
	bw := bufio.NewWriter(w)
	s := float64(size)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white" stroke="black"/>`+"\n", size, size)
	// Net bounding boxes first (light), then cells on top.
	drawn := 0
	for e := 0; e < h.NumNets() && (maxNets == 0 || drawn < maxNets); e++ {
		pins := h.Pins(e)
		minX, maxX := x[pins[0]], x[pins[0]]
		minY, maxY := y[pins[0]], y[pins[0]]
		for _, v := range pins[1:] {
			if x[v] < minX {
				minX = x[v]
			}
			if x[v] > maxX {
				maxX = x[v]
			}
			if y[v] < minY {
				minY = y[v]
			}
			if y[v] > maxY {
				maxY = y[v]
			}
		}
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#9ecae1" stroke-width="0.4"/>`+"\n",
			minX*s, minY*s, (maxX-minX)*s, (maxY-minY)*s)
		drawn++
	}
	for v := 0; v < h.NumCells(); v++ {
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="#d7301f"/>`+"\n", x[v]*s, y[v]*s)
	}
	fmt.Fprintf(bw, `<text x="6" y="%d" font-family="monospace" font-size="12">HPWL %.2f, %d cells, %d nets</text>`+"\n",
		size-8, hpwl, h.NumCells(), h.NumNets())
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}
