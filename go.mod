module mlpart

go 1.22
