package mlpart

// One testing.B benchmark per paper table and figure, plus the design
// ablations from DESIGN.md. Each benchmark regenerates its experiment
// at the tiny scale (2 circuits, 2 runs) so `go test -bench=.`
// exercises every harness end to end in seconds; run
// cmd/experiments with -scale medium/full for paper-protocol numbers.

import (
	"math/rand"
	"testing"

	"mlpart/internal/coarsen"
	"mlpart/internal/expt"
	"mlpart/internal/netgen"
)

// hierarchyOneLevel runs one Match+Induce coarsening step.
func hierarchyOneLevel(c *Circuit, rng *rand.Rand) (*Hypergraph, *Clustering, error) {
	return coarsen.Coarsen(c.H, coarsen.Config{Ratio: 1}, rng)
}

func benchOpts() expt.Options {
	return expt.Options{
		Scale:    netgen.ScaleTiny,
		Runs:     2,
		Seed:     1997,
		Workers:  1,
		Circuits: []string{"balu", "primary1"},
	}
}

// benchExperiment runs a registered experiment once per iteration and
// reports the average cut of the first numeric column as a metric.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := benchOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable1Generate(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2TieBreaking(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3FMvsCLIP(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4ML(b *testing.B)            { benchExperiment(b, "table4") }
func BenchmarkTable5MLFRatio(b *testing.B)      { benchExperiment(b, "table5") }
func BenchmarkTable6MLCRatio(b *testing.B)      { benchExperiment(b, "table6") }
func BenchmarkTable7Comparison(b *testing.B)    { benchExperiment(b, "table7") }
func BenchmarkTable8CPU(b *testing.B)           { benchExperiment(b, "table8") }
func BenchmarkTable9Quadrisection(b *testing.B) { benchExperiment(b, "table9") }
func BenchmarkFigure4RatioSweep(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkAblationBucketOrder(b *testing.B) { benchExperiment(b, "ablation-lifo") }
func BenchmarkAblationLookahead(b *testing.B)   { benchExperiment(b, "ablation-lookahead") }
func BenchmarkAblationBoundary(b *testing.B)    { benchExperiment(b, "ablation-boundary") }
func BenchmarkAblationCoarsestStarts(b *testing.B) {
	benchExperiment(b, "ablation-starts")
}
func BenchmarkAblationTwoPhase(b *testing.B)  { benchExperiment(b, "ablation-twophase") }
func BenchmarkAblationBaselines(b *testing.B) { benchExperiment(b, "ablation-baselines") }
func BenchmarkPlacementHPWL(b *testing.B)     { benchExperiment(b, "placement-hpwl") }
func BenchmarkAblationRecursive(b *testing.B) { benchExperiment(b, "ablation-recursive") }

func BenchmarkGFM2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GFMBipartition(c.H, GFMConfig{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPROPPass2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FMBipartition(c.H, FMConfig{Engine: EnginePROP}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectral2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SpectralBipartition(c.H, SpectralConfig{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopDownPlace2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(c.H, nil, nil, nil, PlacerConfig{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Component micro-benchmarks: the primitives whose speed the paper's
// CPU columns depend on.

func benchCircuit(b *testing.B, cells, nets, pins int) *Circuit {
	b.Helper()
	c, err := GenerateCircuit(CircuitSpec{Name: "bench", Cells: cells, Nets: nets, Pins: pins, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkFMPass2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FMBipartition(c.H, FMConfig{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCLIPPass2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FMBipartition(c.H, FMConfig{Engine: EngineCLIP}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLBipartition2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bipartition(c.H, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVCycleMedium is the allocation-regression benchmark of the
// per-level inner loops: iterated multilevel refinement on the medium
// netgen instance re-runs Match, Induce, Project and the FM engine at
// every level of every cycle, so allocs/op here measures exactly the
// scratch memory the workspace layer is meant to eliminate. Run with
// -benchmem; cmd/benchrun gates the same loops end to end.
func BenchmarkVCycleMedium(b *testing.B) {
	c := benchCircuit(b, 10000, 10500, 34000)
	p, _, err := Bipartition(c.H, Options{Seed: 1997})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := VCycle(c.H, p, 2, MLConfig{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLBipartition2kTelemetryOff/On quantify the telemetry
// layer's cost: Off is the production path (nil collector, one pointer
// check per site) and must sit within noise of BenchmarkMLBipartition2k;
// On shows the armed-collector overhead.

func BenchmarkMLBipartition2kTelemetryOff(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bipartition(c.H, Options{Seed: int64(i), Telemetry: nil}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLBipartition2kTelemetryOn(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := NewTelemetry()
		if _, _, err := Bipartition(c.H, Options{Seed: int64(i), Telemetry: tel}); err != nil {
			b.Fatal(err)
		}
		if tel.Report() == nil {
			b.Fatal("nil report")
		}
	}
}

func BenchmarkMLQuadrisect2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Quadrisect(c.H, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGordianQuadrisect2k(b *testing.B) {
	c := benchCircuit(b, 2000, 2200, 7300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GordianQuadrisect(c.H, c.Pads, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCircuit(CircuitSpec{
			Name: "g", Cells: 10000, Nets: 10500, Pins: 34000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInduce(b *testing.B) {
	// Coarsening throughput: one Match+Induce level on a 10k circuit.
	c := benchCircuit(b, 10000, 10500, 34000)
	rng := rand.New(rand.NewSource(1))
	hs, _, err := hierarchyOneLevel(c, rng)
	if err != nil {
		b.Fatal(err)
	}
	_ = hs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hierarchyOneLevel(c, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
