package mlpart

// Integration tests exercising full flows across modules: generator →
// file formats → partitioners → metrics, with the invariants that
// must hold end to end.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// TestIntegrationFullBipartitionFlow: generate a Table-I-style
// circuit, write/read .hgr, run every bipartitioning engine, and
// check that all agree on the measured cut semantics and balance.
func TestIntegrationFullBipartitionFlow(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "flow", Cells: 900, Nets: 1000, Pins: 3300, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHGR(&buf, c.H); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bound := Balance(h, 2, 0.1)
	type run struct {
		name string
		cut  int
	}
	var runs []run
	for _, eng := range []struct {
		name string
		cfg  FMConfig
	}{
		{"FM", FMConfig{Engine: EngineFM}},
		{"CLIP", FMConfig{Engine: EngineCLIP}},
		{"PROP", FMConfig{Engine: EnginePROP}},
		{"CL-PR", FMConfig{Engine: EngineCLIPPROP}},
	} {
		p, res, err := FMBipartition(h, eng.cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if res.Cut != p.Cut(h) {
			t.Errorf("%s: reported cut %d != measured %d", eng.name, res.Cut, p.Cut(h))
		}
		if !p.IsBalanced(h, bound) {
			t.Errorf("%s: unbalanced", eng.name)
		}
		runs = append(runs, run{eng.name, res.Cut})
	}
	// ML and spectral. Audit on: every level transition is checked
	// from scratch (clustering well-formedness, area conservation,
	// balance, incremental-vs-recomputed cut).
	p, info, err := Bipartition(h, Options{Seed: 1, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cut != p.Cut(h) || !p.IsBalanced(h, bound) {
		t.Error("ML: inconsistent result")
	}
	runs = append(runs, run{"ML", info.Cut})
	sp, scut, err := SpectralBipartition(h, SpectralConfig{RefineFM: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scut != sp.Cut(h) {
		t.Error("spectral: cut mismatch")
	}
	runs = append(runs, run{"EIG+FM", scut})
	// ML should win or tie against every flat engine on this
	// clustered instance.
	for _, r := range runs {
		if r.name != "ML" && info.Cut > r.cut {
			t.Logf("note: ML (%d) behind %s (%d) on this seed", info.Cut, r.name, r.cut)
		}
	}
}

// TestIntegrationQuadrisectionConsistency: ML quadrisection, flat
// 4-way and the GORDIAN baseline must all produce valid, balanced (or
// legal) partitions whose reported metrics match recomputation.
func TestIntegrationQuadrisectionConsistency(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "q", Cells: 700, Nets: 800, Pins: 2600, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	p, info, err := Quadrisect(h, Options{Seed: 2, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cut != p.Cut(h) || info.SumDegrees != p.SumOfDegrees(h) {
		t.Error("ML quad metrics mismatch")
	}
	if !p.IsBalanced(h, Balance(h, 4, 0.1)) {
		t.Error("ML quad unbalanced")
	}
	kp, kcut, err := KwayPartition(h, nil, KwayConfig{K: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kcut != kp.Cut(h) {
		t.Error("kway cut mismatch")
	}
	gp, gcut, err := GordianQuadrisect(h, c.Pads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gcut != gp.Cut(h) {
		t.Error("gordian cut mismatch")
	}
	if err := gp.Validate(h.NumCells()); err != nil {
		t.Error(err)
	}
}

// TestIntegrationPlacementFlow: top-down placement end to end, HPWL
// sanity against random, determinism across calls.
func TestIntegrationPlacementFlow(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "pl", Cells: 500, Nets: 550, Pins: 1800, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	pl, err := Place(h, nil, nil, nil, PlacerConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := Place(h, nil, nil, nil, PlacerConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pl.HPWL != pl2.HPWL {
		t.Error("placement not deterministic")
	}
	rng := rand.New(rand.NewSource(3))
	rx := make([]float64, h.NumCells())
	ry := make([]float64, h.NumCells())
	for v := range rx {
		rx[v], ry[v] = rng.Float64(), rng.Float64()
	}
	if random := PlacementHPWL(h, rx, ry); pl.HPWL >= random {
		t.Errorf("placement HPWL %.2f not better than random %.2f", pl.HPWL, random)
	}
}

// TestIntegrationPartitionFileFlow: the cut of a partition survives
// serialization through the partition-file format.
func TestIntegrationPartitionFileFlow(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "pf", Cells: 300, Nets: 330, Pins: 1050, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	p, info, err := Bipartition(h, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePartition(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPartition(&buf, h.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	if q.Cut(h) != info.Cut {
		t.Errorf("cut after file round trip %d != %d", q.Cut(h), info.Cut)
	}
}

// TestIntegrationLSMCBudget: LSMC with a 10-descent budget must do at
// least as well as the best of its underlying descents would suggest
// (never worse than a single run with the same starting seed family).
func TestIntegrationLSMCBudget(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "ls", Cells: 400, Nets: 450, Pins: 1450, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	_, lsmcCut, err := LSMCBipartition(h, LSMCConfig{Descents: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, single, err := FMBipartition(h, FMConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lsmcCut > single.Cut {
		t.Errorf("LSMC (%d) worse than a single FM descent (%d)", lsmcCut, single.Cut)
	}
}

// TestIntegrationTwoPhaseBetweenFlatAndML: two-phase is the middle
// rung of the levels ladder; over several seeds its total cut should
// be no worse than flat CLIP's and no better than full ML's by a wide
// margin (soft ordering check with slack).
func TestIntegrationTwoPhaseBetweenFlatAndML(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "tp", Cells: 1000, Nets: 1100, Pins: 3600, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	var flat, twoP, ml int
	for seed := int64(0); seed < 4; seed++ {
		_, f, err := FMBipartition(h, FMConfig{Engine: EngineCLIP}, seed)
		if err != nil {
			t.Fatal(err)
		}
		flat += f.Cut
		_, tp, err := TwoPhaseBipartition(h, MLConfig{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		twoP += tp.Cut
		_, m, err := Bipartition(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ml += m.Cut
	}
	if twoP > flat+flat/10 {
		t.Errorf("two-phase total %d clearly worse than flat %d", twoP, flat)
	}
	if ml > twoP+twoP/10 {
		t.Errorf("ML total %d clearly worse than two-phase %d", ml, twoP)
	}
}

// TestIntegrationAuditClean: every engine/options combination of the
// ML pipeline must run audit-clean — the incremental gain/cut
// bookkeeping of each refiner agrees with a from-scratch recount at
// every level transition.
func TestIntegrationAuditClean(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "audit", Cells: 800, Nets: 900, Pins: 2900, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	for _, eng := range []struct {
		name   string
		engine FMConfig
	}{
		{"FM", FMConfig{Engine: EngineFM}},
		{"CLIP", FMConfig{Engine: EngineCLIP}},
		{"PROP", FMConfig{Engine: EnginePROP}},
		{"CL-PR", FMConfig{Engine: EngineCLIPPROP}},
	} {
		opt := Options{Engine: eng.engine.Engine, Seed: 6, Starts: 2, Audit: true}
		if _, _, err := Bipartition(h, opt); err != nil {
			t.Errorf("%s bipartition audit: %v", eng.name, err)
		}
	}
	if _, _, err := Quadrisect(h, Options{Seed: 6, Audit: true}); err != nil {
		t.Errorf("quadrisect audit: %v", err)
	}
	// An interrupted run must audit clean too: the projected-and-
	// rebalanced degraded path maintains the same invariants.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, info, err := BipartitionCtx(ctx, h, Options{Seed: 6, Audit: true}); err != nil {
		t.Errorf("interrupted audit: %v", err)
	} else if !info.Interrupted {
		t.Error("interrupted run not flagged")
	}
}

// TestIntegrationGolem3Scale exercises the full-size flagship
// instance once: generate the 103k-cell golem3 stand-in and run one
// ML_C bipartition, checking the structural invariants that matter
// at scale (hierarchy depth, balance, cut sanity). Skipped in -short.
func TestIntegrationGolem3Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("golem3-scale run takes one to a few minutes")
	}
	if raceDetectorEnabled {
		t.Skip("race-detector slowdown pushes the 103k-cell run past the test timeout")
	}
	specs := BenchmarkSpecs()
	spec := specs[len(specs)-1]
	if spec.Name != "golem3" {
		t.Fatalf("suite tail = %s", spec.Name)
	}
	c, err := GenerateCircuit(spec)
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	if h.NumCells() != 103048 {
		t.Fatalf("cells = %d", h.NumCells())
	}
	p, info, err := Bipartition(h, Options{Seed: 1, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Levels < 10 {
		t.Errorf("levels = %d, want ≥ 10 for 103k cells at T=35, R=0.5", info.Levels)
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Error("unbalanced at scale")
	}
	if info.Cut <= 0 || info.Cut >= h.NumNets() {
		t.Errorf("implausible cut %d", info.Cut)
	}
	t.Logf("golem3: cut %d over %d nets, %d levels", info.Cut, h.NumNets(), info.Levels)
}
